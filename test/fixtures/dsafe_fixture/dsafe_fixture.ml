(* Deliberately unsafe module: one module-level mutable binding of every
   class dsafe must detect, plus every banned construct.  test_dsafe
   asserts the analyzer reports all of them; nothing here is meant to
   run (the banned functions would misbehave if called). *)

(* ref cell *)
let counter = ref 0

(* hashtable, with the type ascription spelling (Tpat_alias pattern) *)
let table : (string, int) Hashtbl.t = Hashtbl.create 4

(* buffer *)
let buf = Buffer.create 16

(* array via creator function *)
let cells = Array.make 4 0

(* array literal *)
let literal = [| "a"; "b" |]

(* record type with a mutable field, plus a toplevel instance *)
type box = { mutable slot : int; tag : string }

let the_box = { slot = 0; tag = "fixture" }

(* instance minted by a helper: only the type-based fallback can see
   that [via_fn] is mutable *)
let mk () = { slot = 1; tag = "via-fn" }

let via_fn = mk ()

(* lazy block *)
let page = lazy (Sys.getenv_opt "HOME")

(* mutable cell captured by a returned closure: module-level state in
   disguise *)
let next =
  let cell = ref 0 in
  fun () ->
    incr cell;
    !cell

(* intrinsically guarded sites: still in the inventory, tagged guarded *)
let guarded = Atomic.make 0

let lock = Mutex.create ()

(* banned constructs *)
let casted (x : int) : int = Obj.magic x

let seeded () = Random.self_init ()

let unmarshal (s : string) : int = Marshal.from_string s 0
