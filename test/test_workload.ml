(* Workload generators: shapes, determinism and compressibility. *)

open Expfinder_graph
open Expfinder_pattern
module Synthetic = Expfinder_workload.Synthetic
module Twitter = Expfinder_workload.Twitter
module Queries = Expfinder_workload.Queries

let test_flat_shape () =
  let g = Synthetic.flat (Prng.create 1) ~n:500 ~avg_degree:4 in
  Alcotest.(check int) "nodes" 500 (Digraph.node_count g);
  Alcotest.(check int) "edges" 2000 (Digraph.edge_count g);
  let exp_ok = ref true in
  Digraph.iter_nodes g (fun v ->
      let e = Synthetic.exp_of g v in
      if e < 0 || e > 10 then exp_ok := false);
  Alcotest.(check bool) "exp range" true !exp_ok

let test_flat_deterministic () =
  let g1 = Synthetic.flat (Prng.create 7) ~n:100 ~avg_degree:3 in
  let g2 = Synthetic.flat (Prng.create 7) ~n:100 ~avg_degree:3 in
  Alcotest.(check bool) "same graph" true (Digraph.equal_structure g1 g2)

let test_org_shape () =
  let g = Synthetic.org (Prng.create 2) ~teams:10 ~team_size:6 in
  (* 10 managers + 60 workers + 1 director *)
  Alcotest.(check int) "nodes" 71 (Digraph.node_count g);
  (* Workers point to their manager; managers to workers and director. *)
  Alcotest.(check bool) "edges present" true (Digraph.edge_count g > 100)

let test_org_compresses_well () =
  let g = Snapshot.of_digraph (Synthetic.org (Prng.create 3) ~teams:20 ~team_size:8) in
  let compressed = Expfinder_compression.Compress.compress ~atoms:Queries.atom_universe g in
  Alcotest.(check bool) "compression > 30%" true
    (Expfinder_compression.Compress.node_ratio compressed > 0.3)

let test_twitter_shape () =
  let g = Twitter.generate (Prng.create 4) ~n:400 in
  Alcotest.(check int) "nodes" 400 (Digraph.node_count g);
  let max_in = ref 0 in
  Digraph.iter_nodes g (fun v -> max_in := max !max_in (Digraph.in_degree g v));
  Alcotest.(check bool) "skewed degrees" true (!max_in > 15);
  (* followers attribute matches in-degree *)
  let ok = ref true in
  Digraph.iter_nodes g (fun v ->
      match Attrs.find (Digraph.attrs g v) "followers" with
      | Some (Attr.Int f) -> if f <> Digraph.in_degree g v then ok := false
      | _ -> ok := false);
  Alcotest.(check bool) "followers recorded" true !ok

let test_distinct_labels () =
  let g = Expfinder_workload.Collab.graph () in
  let labels = Queries.distinct_labels g in
  Alcotest.(check int) "5 labels" 5 (Array.length labels)

let test_workload_queries_supported () =
  let rng = Prng.create 5 in
  let g = Synthetic.flat rng ~n:200 ~avg_degree:4 in
  let queries = Queries.workload rng ~count:20 ~simulation:false g in
  Alcotest.(check int) "20 queries" 20 (List.length queries);
  let compressed =
    Expfinder_compression.Compress.compress ~atoms:Queries.atom_universe (Snapshot.of_digraph g)
  in
  List.iter
    (fun q ->
      Alcotest.(check bool) "supported" true
        (Expfinder_compression.Compress.supports compressed q))
    queries;
  let sim_queries = Queries.workload rng ~count:5 ~simulation:true g in
  List.iter
    (fun q -> Alcotest.(check bool) "simulation" true (Pattern.is_simulation_pattern q))
    sim_queries

(* Exact match sets for the Fig. 4 queries on the Fig. 1 network. *)
let test_collab_q1_q2_q3_matches () =
  let open Expfinder_core in
  let g = Snapshot.of_digraph (Expfinder_workload.Collab.graph ()) in
  let open Expfinder_workload in
  (* Q1 (plain simulation): direct SA<->SD collaboration = Bob and Dan. *)
  let m1 = Bounded_sim.run (Collab.q1 ()) g in
  Alcotest.(check (list int)) "Q1 SA" [ Collab.bob ] (Match_relation.matches m1 0);
  Alcotest.(check (list int)) "Q1 SD" [ Collab.dan ] (Match_relation.matches m1 1);
  (* Q2: only Bob reaches a tester within 3 hops. *)
  let m2 = Bounded_sim.run (Collab.q2 ()) g in
  Alcotest.(check (list int)) "Q2 SA" [ Collab.bob ] (Match_relation.matches m2 0);
  Alcotest.(check (list int)) "Q2 ST" [ Collab.eva ] (Match_relation.matches m2 2);
  (* Q3 (unbounded edges): both SAs, all SDs that reach an SA. *)
  let m3 = Bounded_sim.run (Collab.q3 ()) g in
  Alcotest.(check (list int)) "Q3 SA" [ Collab.walt; Collab.bob ] (Match_relation.matches m3 0);
  Alcotest.(check (list int)) "Q3 SD"
    (List.sort compare [ Collab.dan; Collab.mat; Collab.pat ])
    (Match_relation.matches m3 1)

(* Matching stays well-behaved at two orders of magnitude above the
   unit-test sizes. *)
let test_large_graph_smoke () =
  let open Expfinder_core in
  let g = Snapshot.of_digraph (Synthetic.flat (Prng.create 9) ~n:50_000 ~avg_degree:4) in
  let q =
    let spec name label k =
      { Pattern.name; label = Some (Label.of_string label); pred = Predicate.ge_int "exp" k }
    in
    Pattern.make_exn
      ~nodes:[| spec "SA" "SA" 5; spec "SD" "SD" 2 |]
      ~edges:[ (0, 1, Pattern.Bounded 2); (1, 0, Pattern.Bounded 2) ]
      ~output:0
  in
  let m = Bounded_sim.run q g in
  Alcotest.(check bool) "nonempty at scale" true (Match_relation.is_total m);
  Alcotest.(check bool) "consistent at scale" true (Bounded_sim.consistent q g m)

let test_collab_graph_sanity () =
  let g = Expfinder_workload.Collab.graph () in
  Alcotest.(check int) "9 people" 9 (Digraph.node_count g);
  Alcotest.(check int) "14 edges" 14 (Digraph.edge_count g);
  Alcotest.(check string) "name_of" "Bob" (Expfinder_workload.Collab.name_of 1);
  Alcotest.(check bool) "e1 absent" false
    (Digraph.has_edge g (fst Expfinder_workload.Collab.e1) (snd Expfinder_workload.Collab.e1))

let () =
  Alcotest.run "workload"
    [
      ( "synthetic",
        [
          Alcotest.test_case "flat shape" `Quick test_flat_shape;
          Alcotest.test_case "flat deterministic" `Quick test_flat_deterministic;
          Alcotest.test_case "org shape" `Quick test_org_shape;
          Alcotest.test_case "org compresses" `Quick test_org_compresses_well;
        ] );
      ("twitter", [ Alcotest.test_case "shape" `Quick test_twitter_shape ]);
      ( "queries",
        [
          Alcotest.test_case "distinct labels" `Quick test_distinct_labels;
          Alcotest.test_case "workload supported" `Quick test_workload_queries_supported;
        ] );
      ( "collab",
        [
          Alcotest.test_case "graph sanity" `Quick test_collab_graph_sanity;
          Alcotest.test_case "Q1-Q3 exact matches" `Quick test_collab_q1_q2_q3_matches;
        ] );
      ("scale", [ Alcotest.test_case "50k-node smoke" `Slow test_large_graph_smoke ]);
    ]
