(* Workload generators: shapes, determinism and compressibility. *)

open Expfinder_graph
open Expfinder_pattern
module Synthetic = Expfinder_workload.Synthetic
module Twitter = Expfinder_workload.Twitter
module Queries = Expfinder_workload.Queries

let test_flat_shape () =
  let g = Synthetic.flat (Prng.create 1) ~n:500 ~avg_degree:4 in
  Alcotest.(check int) "nodes" 500 (Digraph.node_count g);
  Alcotest.(check int) "edges" 2000 (Digraph.edge_count g);
  let exp_ok = ref true in
  Digraph.iter_nodes g (fun v ->
      let e = Synthetic.exp_of g v in
      if e < 0 || e > 10 then exp_ok := false);
  Alcotest.(check bool) "exp range" true !exp_ok

let test_flat_deterministic () =
  let g1 = Synthetic.flat (Prng.create 7) ~n:100 ~avg_degree:3 in
  let g2 = Synthetic.flat (Prng.create 7) ~n:100 ~avg_degree:3 in
  Alcotest.(check bool) "same graph" true (Digraph.equal_structure g1 g2)

let test_org_shape () =
  let g = Synthetic.org (Prng.create 2) ~teams:10 ~team_size:6 in
  (* 10 managers + 60 workers + 1 director *)
  Alcotest.(check int) "nodes" 71 (Digraph.node_count g);
  (* Workers point to their manager; managers to workers and director. *)
  Alcotest.(check bool) "edges present" true (Digraph.edge_count g > 100)

let test_org_compresses_well () =
  let g = Snapshot.of_digraph (Synthetic.org (Prng.create 3) ~teams:20 ~team_size:8) in
  let compressed = Expfinder_compression.Compress.compress ~atoms:Queries.atom_universe g in
  Alcotest.(check bool) "compression > 30%" true
    (Expfinder_compression.Compress.node_ratio compressed > 0.3)

let test_twitter_shape () =
  let g = Twitter.generate (Prng.create 4) ~n:400 in
  Alcotest.(check int) "nodes" 400 (Digraph.node_count g);
  let max_in = ref 0 in
  Digraph.iter_nodes g (fun v -> max_in := max !max_in (Digraph.in_degree g v));
  Alcotest.(check bool) "skewed degrees" true (!max_in > 15);
  (* followers attribute matches in-degree *)
  let ok = ref true in
  Digraph.iter_nodes g (fun v ->
      match Attrs.find (Digraph.attrs g v) "followers" with
      | Some (Attr.Int f) -> if f <> Digraph.in_degree g v then ok := false
      | _ -> ok := false);
  Alcotest.(check bool) "followers recorded" true !ok

let test_distinct_labels () =
  let g = Expfinder_workload.Collab.graph () in
  let labels = Queries.distinct_labels g in
  Alcotest.(check int) "5 labels" 5 (Array.length labels)

let test_workload_queries_supported () =
  let rng = Prng.create 5 in
  let g = Synthetic.flat rng ~n:200 ~avg_degree:4 in
  let queries = Queries.workload rng ~count:20 ~simulation:false g in
  Alcotest.(check int) "20 queries" 20 (List.length queries);
  let compressed =
    Expfinder_compression.Compress.compress ~atoms:Queries.atom_universe (Snapshot.of_digraph g)
  in
  List.iter
    (fun q ->
      Alcotest.(check bool) "supported" true
        (Expfinder_compression.Compress.supports compressed q))
    queries;
  let sim_queries = Queries.workload rng ~count:5 ~simulation:true g in
  List.iter
    (fun q -> Alcotest.(check bool) "simulation" true (Pattern.is_simulation_pattern q))
    sim_queries

(* Exact match sets for the Fig. 4 queries on the Fig. 1 network. *)
let test_collab_q1_q2_q3_matches () =
  let open Expfinder_core in
  let g = Snapshot.of_digraph (Expfinder_workload.Collab.graph ()) in
  let open Expfinder_workload in
  (* Q1 (plain simulation): direct SA<->SD collaboration = Bob and Dan. *)
  let m1 = Bounded_sim.run (Collab.q1 ()) g in
  Alcotest.(check (list int)) "Q1 SA" [ Collab.bob ] (Match_relation.matches m1 0);
  Alcotest.(check (list int)) "Q1 SD" [ Collab.dan ] (Match_relation.matches m1 1);
  (* Q2: only Bob reaches a tester within 3 hops. *)
  let m2 = Bounded_sim.run (Collab.q2 ()) g in
  Alcotest.(check (list int)) "Q2 SA" [ Collab.bob ] (Match_relation.matches m2 0);
  Alcotest.(check (list int)) "Q2 ST" [ Collab.eva ] (Match_relation.matches m2 2);
  (* Q3 (unbounded edges): both SAs, all SDs that reach an SA. *)
  let m3 = Bounded_sim.run (Collab.q3 ()) g in
  Alcotest.(check (list int)) "Q3 SA" [ Collab.walt; Collab.bob ] (Match_relation.matches m3 0);
  Alcotest.(check (list int)) "Q3 SD"
    (List.sort compare [ Collab.dan; Collab.mat; Collab.pat ])
    (Match_relation.matches m3 1)

(* Matching stays well-behaved at two orders of magnitude above the
   unit-test sizes. *)
let test_large_graph_smoke () =
  let open Expfinder_core in
  let g = Snapshot.of_digraph (Synthetic.flat (Prng.create 9) ~n:50_000 ~avg_degree:4) in
  let q =
    let spec name label k =
      { Pattern.name; label = Some (Label.of_string label); pred = Predicate.ge_int "exp" k }
    in
    Pattern.make_exn
      ~nodes:[| spec "SA" "SA" 5; spec "SD" "SD" 2 |]
      ~edges:[ (0, 1, Pattern.Bounded 2); (1, 0, Pattern.Bounded 2) ]
      ~output:0
  in
  let m = Bounded_sim.run q g in
  Alcotest.(check bool) "nonempty at scale" true (Match_relation.is_total m);
  Alcotest.(check bool) "consistent at scale" true (Bounded_sim.consistent q g m)

let test_collab_graph_sanity () =
  let g = Expfinder_workload.Collab.graph () in
  Alcotest.(check int) "9 people" 9 (Digraph.node_count g);
  Alcotest.(check int) "14 edges" 14 (Digraph.edge_count g);
  Alcotest.(check string) "name_of" "Bob" (Expfinder_workload.Collab.name_of 1);
  Alcotest.(check bool) "e1 absent" false
    (Digraph.has_edge g (fst Expfinder_workload.Collab.e1) (snd Expfinder_workload.Collab.e1))

(* --- capture / replay --------------------------------------------------- *)

let with_qlog_capture f =
  let open Expfinder_telemetry in
  let path = Filename.temp_file "expfinder-replay" ".jsonl" in
  Qlog.set_sink (Some path);
  Fun.protect
    ~finally:(fun () ->
      Qlog.set_sink None;
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* Serve a small mixed workload with the query log on, then replay the
   log on a fresh engine over the same base graph: every answer digest
   must reproduce, including the queries that run after the update. *)
let test_replay_roundtrip () =
  let open Expfinder_engine in
  let open Expfinder_telemetry in
  let module Collab = Expfinder_workload.Collab in
  let module Replay = Expfinder_workload.Replay in
  with_qlog_capture (fun path ->
      let engine = Engine.create (Collab.graph ()) in
      ignore (Engine.evaluate engine (Collab.q1 ()));
      ignore (Engine.evaluate engine (Collab.q2 ()));
      let src, dst = Collab.e1 in
      ignore (Engine.apply_updates engine [ Expfinder_incremental.Update.Insert_edge (src, dst) ]);
      ignore (Engine.evaluate engine (Collab.q1 ()));
      ignore (Engine.evaluate_batch engine [ Collab.q1 (); Collab.q3 () ]);
      Qlog.close ();
      let events =
        match Qlog.load path with Ok e -> e | Error e -> Alcotest.fail e
      in
      Alcotest.(check int) "5 events captured" 5 (List.length events);
      let summary = Replay.run (Engine.create (Collab.graph ())) events in
      Alcotest.(check int) "all replayed" 5 summary.Replay.replayed;
      Alcotest.(check int) "no skips" 0 summary.Replay.skipped;
      Alcotest.(check int) "no mismatches" 0 summary.Replay.mismatches;
      (* The derived bench report holds one replayed/recorded record pair
         per distinct request plus the aggregate, and diffing it against
         itself never regresses. *)
      let report = Replay.report summary in
      let ids = List.map (fun r -> r.Report.id) (Report.records report) in
      Alcotest.(check bool) "aggregate record present" true (List.mem "REPLAY.total" ids);
      Alcotest.(check bool) "recorded latencies kept alongside" true
        (List.exists (fun id -> String.length id > 5 && String.sub id 0 5 = "QLOG.") ids);
      let self = Report.diff ~baseline:report ~candidate:report () in
      Alcotest.(check bool) "self-diff has no regressions" false (Report.has_regression self))

(* A divergent engine state must be caught: replaying against a graph
   that already contains the captured update's edge flips the first
   query's digest. *)
let test_replay_detects_divergence () =
  let open Expfinder_engine in
  let open Expfinder_telemetry in
  let module Collab = Expfinder_workload.Collab in
  let module Replay = Expfinder_workload.Replay in
  with_qlog_capture (fun path ->
      let engine = Engine.create (Collab.graph ()) in
      ignore (Engine.evaluate engine (Collab.q3 ()));
      Qlog.close ();
      let events = match Qlog.load path with Ok e -> e | Error e -> Alcotest.fail e in
      (* Tampered digest: flip a hex digit in the recorded answer. *)
      let tampered =
        List.map
          (fun (e : Qlog.event) ->
            { e with Qlog.digest = (if e.Qlog.digest = "" then "" else "0" ^ String.sub e.Qlog.digest 1 (String.length e.Qlog.digest - 1)) })
          events
      in
      let summary = Replay.run (Engine.create (Collab.graph ())) tampered in
      Alcotest.(check bool) "tampering detected" true (summary.Replay.mismatches >= 1);
      Alcotest.(check int) "mismatch listed" summary.Replay.mismatches
        (List.length (Replay.mismatches summary));
      (* Divergent base state: the captured graph plus a foreign edge. *)
      let g = Collab.graph () in
      let src, dst = Collab.e1 in
      ignore (Expfinder_incremental.Update.apply g (Expfinder_incremental.Update.Insert_edge (src, dst)));
      let summary = Replay.run (Engine.create g) events in
      Alcotest.(check bool) "divergent graph detected" true (summary.Replay.mismatches >= 1))

(* Events that recorded an error or carry no payload are skipped, not
   failed. *)
let test_replay_skips () =
  let open Expfinder_engine in
  let open Expfinder_telemetry in
  let module Collab = Expfinder_workload.Collab in
  let module Replay = Expfinder_workload.Replay in
  with_qlog_capture (fun path ->
      let engine = Engine.create (Collab.graph ()) in
      ignore (Engine.evaluate engine (Collab.q1 ()));
      Qlog.close ();
      let events = match Qlog.load path with Ok e -> e | Error e -> Alcotest.fail e in
      let stripped =
        List.concat_map
          (fun (e : Qlog.event) ->
            [ { e with Qlog.payload = None }; { e with Qlog.error = Some "boom" } ])
          events
      in
      let summary = Replay.run (Engine.create (Collab.graph ())) stripped in
      Alcotest.(check int) "all skipped" 2 summary.Replay.skipped;
      Alcotest.(check int) "none replayed" 0 summary.Replay.replayed;
      Alcotest.(check int) "skips are not mismatches" 0 summary.Replay.mismatches)

(* An event whose replay raises — here an update naming a node the
   current graph lacks, which Digraph rejects with Invalid_argument —
   must surface as a mismatch carrying the error text, and the events
   after it must still replay. *)
let test_replay_crash_is_mismatch () =
  let open Expfinder_engine in
  let open Expfinder_telemetry in
  let module Collab = Expfinder_workload.Collab in
  let module Replay = Expfinder_workload.Replay in
  with_qlog_capture (fun path ->
      let engine = Engine.create (Collab.graph ()) in
      let src, dst = Collab.e1 in
      ignore (Engine.apply_updates engine [ Expfinder_incremental.Update.Insert_edge (src, dst) ]);
      ignore (Engine.evaluate engine (Collab.q1 ()));
      Qlog.close ();
      let events = match Qlog.load path with Ok e -> e | Error e -> Alcotest.fail e in
      let poisoned =
        List.map
          (fun (e : Qlog.event) ->
            if e.Qlog.kind = Qlog.Update then
              {
                e with
                Qlog.payload =
                  Some
                    (Json.Arr
                       [
                         Json.Obj
                           [ ("op", Json.Str "+"); ("u", Json.Int 999_999); ("v", Json.Int 0) ];
                       ]);
              }
            else e)
          events
      in
      let summary = Replay.run (Engine.create (Collab.graph ())) poisoned in
      Alcotest.(check int) "nothing skipped" 0 summary.Replay.skipped;
      Alcotest.(check int) "both events replayed" 2 summary.Replay.replayed;
      Alcotest.(check bool) "crash reported as mismatch" true (summary.Replay.mismatches >= 1);
      let crashed =
        List.find (fun (o : Replay.outcome) -> not o.Replay.matched) summary.Replay.outcomes
      in
      Alcotest.(check bool) "mismatch digest carries the error text" true
        (String.length crashed.Replay.digest > 6
        && String.sub crashed.Replay.digest 0 6 = "error:"))

(* Schema-compatibility regression: the committed fixture was captured
   by a pre-trace-context build (schema v1, no trace_id member) against
   the collab smoke workload.  A v2 loader must keep accepting it —
   trace ids default to "" — and replay it with zero digest
   mismatches. *)
let test_replay_v1_fixture () =
  let open Expfinder_engine in
  let open Expfinder_telemetry in
  let module Collab = Expfinder_workload.Collab in
  let module Replay = Expfinder_workload.Replay in
  (* dune runtest runs in the stanza directory; dune exec from the
     project root does not — fall back to the executable's directory,
     where the declared dep is materialised either way. *)
  let fixture =
    if Sys.file_exists "fixtures/qlog_v1.jsonl" then "fixtures/qlog_v1.jsonl"
    else Filename.concat (Filename.dirname Sys.executable_name) "fixtures/qlog_v1.jsonl"
  in
  let events = match Qlog.load fixture with Ok e -> e | Error e -> Alcotest.fail e in
  Alcotest.(check int) "all fixture events parsed" 9 (List.length events);
  List.iter
    (fun (e : Qlog.event) ->
      Alcotest.(check string) "v1 events carry no trace id" "" e.Qlog.trace_id)
    events;
  let summary = Replay.run (Engine.create (Collab.graph ())) events in
  Alcotest.(check int) "all replayed" 9 summary.Replay.replayed;
  Alcotest.(check int) "no mismatches" 0 summary.Replay.mismatches;
  (* Identity-free events yield reports without a trace_ids param. *)
  let report = Replay.report summary in
  List.iter
    (fun (r : Report.record) ->
      Alcotest.(check bool)
        ("no trace_ids on " ^ r.Report.id)
        false
        (List.mem_assoc "trace_ids" r.Report.params))
    (Report.records report)

(* v2 capture: requests evaluated under an explicit trace context stamp
   their id into the qlog line, and replay carries the captured ids into
   the matching REPLAY.* / QLOG.* report records. *)
let test_replay_preserves_trace_ids () =
  let open Expfinder_engine in
  let open Expfinder_telemetry in
  let module Collab = Expfinder_workload.Collab in
  let module Replay = Expfinder_workload.Replay in
  with_qlog_capture (fun path ->
      let engine = Engine.create (Collab.graph ()) in
      let ctx = Trace.make ~sampled:true () in
      ignore (Engine.evaluate ~trace:ctx engine (Collab.q1 ()));
      Qlog.close ();
      let events = match Qlog.load path with Ok e -> e | Error e -> Alcotest.fail e in
      (match events with
      | [ e ] -> Alcotest.(check string) "qlog line carries the trace id" ctx.Trace.trace_id e.Qlog.trace_id
      | _ -> Alcotest.fail "expected exactly one captured event");
      let summary = Replay.run (Engine.create (Collab.graph ())) events in
      Alcotest.(check int) "no mismatches" 0 summary.Replay.mismatches;
      let report = Replay.report summary in
      let replay_record =
        List.find
          (fun (r : Report.record) ->
            String.length r.Report.id > 7 && String.sub r.Report.id 0 7 = "REPLAY."
            && r.Report.id <> "REPLAY.total")
          (Report.records report)
      in
      match List.assoc_opt "trace_ids" replay_record.Report.params with
      | Some (Json.Arr [ Json.Str tid ]) ->
        Alcotest.(check string) "captured trace id preserved" ctx.Trace.trace_id tid
      | _ -> Alcotest.fail "REPLAY record lacks its trace_ids param")

let () =
  Alcotest.run "workload"
    [
      ( "synthetic",
        [
          Alcotest.test_case "flat shape" `Quick test_flat_shape;
          Alcotest.test_case "flat deterministic" `Quick test_flat_deterministic;
          Alcotest.test_case "org shape" `Quick test_org_shape;
          Alcotest.test_case "org compresses" `Quick test_org_compresses_well;
        ] );
      ("twitter", [ Alcotest.test_case "shape" `Quick test_twitter_shape ]);
      ( "queries",
        [
          Alcotest.test_case "distinct labels" `Quick test_distinct_labels;
          Alcotest.test_case "workload supported" `Quick test_workload_queries_supported;
        ] );
      ( "collab",
        [
          Alcotest.test_case "graph sanity" `Quick test_collab_graph_sanity;
          Alcotest.test_case "Q1-Q3 exact matches" `Quick test_collab_q1_q2_q3_matches;
        ] );
      ( "replay",
        [
          Alcotest.test_case "capture/replay roundtrip" `Quick test_replay_roundtrip;
          Alcotest.test_case "divergence detected" `Quick test_replay_detects_divergence;
          Alcotest.test_case "errored/payload-free events skipped" `Quick test_replay_skips;
          Alcotest.test_case "raising event is a mismatch, not a crash" `Quick
            test_replay_crash_is_mismatch;
          Alcotest.test_case "v1 fixture still loads and replays" `Quick test_replay_v1_fixture;
          Alcotest.test_case "trace ids preserved into replay reports" `Quick
            test_replay_preserves_trace_ids;
        ] );
      ("scale", [ Alcotest.test_case "50k-node smoke" `Slow test_large_graph_smoke ]);
    ]
