(* Incremental maintenance: correctness against batch recomputation, on
   the paper's Example 3 and on randomised graph/pattern/update streams. *)

open Expfinder_graph
open Expfinder_pattern
open Expfinder_core
open Expfinder_incremental
module Collab = Expfinder_workload.Collab

(* --- Example 3 through the incremental engine ---------------------- *)

let test_example3_incremental () =
  let g = Collab.graph () in
  let inc = Incremental.create (Collab.query ()) g in
  let src, dst = Collab.e1 in
  let report = Incremental.apply_updates inc g [ Update.Insert_edge (src, dst) ] in
  Alcotest.(check int) "one effective update" 1 report.effective;
  Alcotest.(check (list (pair int int)))
    "delta = {(SD,Fred)}"
    [ (1, Collab.fred) ]
    report.added;
  Alcotest.(check (list (pair int int))) "nothing removed" [] report.removed;
  (* Nobody points to Fred, so the area is Fred plus the potential
     witnesses in his dependency ball (Eva, Jean, Walt, Mat) — 5 of the 9
     people, never the whole graph. *)
  Alcotest.(check int) "area = Fred + his ball" 5 report.area

let test_example3_then_delete () =
  let g = Collab.graph () in
  let inc = Incremental.create (Collab.query ()) g in
  let src, dst = Collab.e1 in
  let _ = Incremental.apply_updates inc g [ Update.Insert_edge (src, dst) ] in
  let report = Incremental.apply_updates inc g [ Update.Delete_edge (src, dst) ] in
  Alcotest.(check (list (pair int int)))
    "deletion removes (SD,Fred)"
    [ (1, Collab.fred) ]
    report.removed;
  let fresh = Bounded_sim.run (Collab.query ()) (Incremental.snapshot inc) in
  Alcotest.(check bool) "kernel = batch" true
    (Match_relation.equal (Incremental.kernel inc) fresh)

let test_out_of_sync_rejected () =
  let g = Collab.graph () in
  let inc = Incremental.create (Collab.query ()) g in
  ignore (Digraph.add_edge g Collab.bill Collab.jean : bool);
  Alcotest.check_raises "stale digraph rejected"
    (Invalid_argument "Incremental.apply_updates: digraph out of sync with tracked snapshot")
    (fun () -> ignore (Incremental.apply_updates inc g [] : Incremental.report))

let test_node_insertion () =
  let g = Collab.graph () in
  let inc = Incremental.create (Collab.query ()) g in
  (* A new junior architect joins and leads Dan: not enough experience to
     match SA, so the kernel is unchanged. *)
  let attrs = Attrs.of_list [ Attrs.str "name" "Ann"; Attrs.int "exp" 1 ] in
  let report =
    Incremental.apply_updates inc g
      [ Update.Insert_node (Label.of_string "SA", attrs); Update.Insert_edge (9, Collab.dan) ]
  in
  Alcotest.(check (list (pair int int))) "no additions" [] report.added;
  (* A seasoned architect joins next to Bob's team and matches. *)
  let attrs = Attrs.of_list [ Attrs.str "name" "Sam"; Attrs.int "exp" 9 ] in
  let report =
    Incremental.apply_updates inc g
      [
        Update.Insert_node (Label.of_string "SA", attrs);
        Update.Insert_edge (10, Collab.dan);
        Update.Insert_edge (10, Collab.jean);
      ]
  in
  Alcotest.(check (list (pair int int))) "Sam matches SA" [ (0, 10) ] report.added

(* --- Randomised equivalence with batch recomputation ---------------- *)

let labels = Array.map Label.of_string [| "A"; "B"; "C" |]

let random_graph rng =
  let n = 1 + Prng.int rng 40 in
  let m = Prng.int rng (3 * n) in
  Generators.erdos_renyi rng ~n ~m (fun _ ->
      (Prng.choose rng labels, Attrs.of_list [ Attrs.int "exp" (Prng.int rng 6) ]))

let random_pattern rng ~simulation =
  let c =
    {
      Pattern_gen.default with
      nodes = 1 + Prng.int rng 4;
      extra_edges = Prng.int rng 3;
      max_bound = 3;
      condition_prob = 0.5;
      condition_range = (0, 4);
    }
  in
  let c = if simulation then Pattern_gen.simulation_config c else c in
  Pattern_gen.generate rng c ~labels

let random_updates rng g =
  let k = 1 + Prng.int rng 8 in
  Update.random_mixed rng g k

let equivalence_property ~simulation seed =
  let rng = Prng.create seed in
  let g = random_graph rng in
  let pattern = random_pattern rng ~simulation in
  let inc = Incremental.create pattern g in
  (* Three successive batches, checking after each. *)
  let ok = ref true in
  for _round = 1 to 3 do
    let updates = random_updates rng g in
    let _ = Incremental.apply_updates inc g updates in
    let batch =
      if Pattern.is_simulation_pattern pattern then
        Simulation.run pattern (Incremental.snapshot inc)
      else Bounded_sim.run pattern (Incremental.snapshot inc)
    in
    if not (Match_relation.equal (Incremental.kernel inc) batch) then ok := false
  done;
  !ok

(* Extended stress: longer streams, node insertions, occasional unbounded
   edges, both area strategies.  This is the property that caught the
   mutual-support completeness bug in the ball-closure area growth. *)
let stress_property seed =
  let rng = Prng.create seed in
  let g = random_graph rng in
  let pattern =
    let c =
      {
        Pattern_gen.default with
        nodes = 1 + Prng.int rng 5;
        extra_edges = Prng.int rng 4;
        max_bound = 3;
        unbounded_prob = (if Prng.int rng 4 = 0 then 0.3 else 0.0);
        condition_prob = 0.5;
        condition_range = (0, 4);
      }
    in
    let c = if Prng.bool rng then Pattern_gen.simulation_config c else c in
    Pattern_gen.generate rng c ~labels
  in
  let strategy = if Prng.bool rng then Incremental.Ball_closure else Incremental.Ancestors in
  let inc = Incremental.create ~area_strategy:strategy pattern g in
  let ok = ref true in
  for _round = 1 to 5 do
    let updates = Update.random_mixed rng g (1 + Prng.int rng 10) in
    let updates =
      if Prng.int rng 3 = 0 then
        updates
        @ [
            Update.Insert_node
              (Prng.choose rng labels, Attrs.of_list [ Attrs.int "exp" (Prng.int rng 6) ]);
            Update.Insert_edge (Digraph.node_count g, Prng.int rng (Digraph.node_count g));
          ]
      else updates
    in
    let _ = Incremental.apply_updates inc g updates in
    let csr = Snapshot.of_digraph g in
    let batch =
      if Pattern.is_simulation_pattern pattern then Simulation.run pattern csr
      else Bounded_sim.run pattern csr
    in
    if not (Match_relation.equal (Incremental.kernel inc) batch) then ok := false
  done;
  !ok

let qcheck_cases =
  [
    QCheck.Test.make ~count:60 ~name:"incremental sim = batch sim"
      QCheck.small_int (fun seed -> equivalence_property ~simulation:true (seed + 1));
    QCheck.Test.make ~count:40 ~name:"incremental bsim = batch bsim"
      QCheck.small_int (fun seed -> equivalence_property ~simulation:false (seed + 1));
    QCheck.Test.make ~count:60 ~name:"incremental stress (nodes/unbounded/strategies)"
      QCheck.small_int (fun seed -> stress_property (seed + 1));
  ]

(* --- Update plumbing ------------------------------------------------ *)

let test_update_invert () =
  let u = Update.Insert_edge (1, 2) in
  Alcotest.(check bool) "invert insert" true (Update.invert u = Some (Update.Delete_edge (1, 2)));
  Alcotest.(check bool) "invert node insert" true
    (Update.invert (Update.Insert_node (Label.of_string "A", Attrs.empty)) = None)

let test_random_deletions_are_edges () =
  let rng = Prng.create 7 in
  let g = random_graph rng in
  let dels = Update.random_deletions rng g 10 in
  List.iter
    (function
      | Update.Delete_edge (u, v) ->
        Alcotest.(check bool) "edge exists" true (Digraph.has_edge g u v)
      | _ -> Alcotest.fail "expected deletion")
    dels

let test_touched_sources_dedup () =
  let ups = [ Update.Insert_edge (3, 4); Update.Delete_edge (3, 5); Update.Insert_edge (2, 3) ] in
  Alcotest.(check (list int)) "sources" [ 3; 2 ] (Update.touched_sources ups)

let () =
  Alcotest.run "incremental"
    [
      ( "example3",
        [
          Alcotest.test_case "insert e1" `Quick test_example3_incremental;
          Alcotest.test_case "insert then delete e1" `Quick test_example3_then_delete;
          Alcotest.test_case "out-of-sync rejected" `Quick test_out_of_sync_rejected;
          Alcotest.test_case "node insertion" `Quick test_node_insertion;
        ] );
      ( "updates",
        [
          Alcotest.test_case "invert" `Quick test_update_invert;
          Alcotest.test_case "random deletions" `Quick test_random_deletions_are_edges;
          Alcotest.test_case "touched sources" `Quick test_touched_sources_dedup;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_cases);
    ]
