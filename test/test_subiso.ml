(* Subgraph-isomorphism baseline: correctness on crafted graphs, the
   paper's Example 1 discussion, and containment in the bounded-
   simulation kernel. *)

open Expfinder_graph
open Expfinder_pattern
open Expfinder_core
module Collab = Expfinder_workload.Collab

let l s = Label.of_string s

let spec ?(pred = Predicate.always) name label = { Pattern.name; label = Some (l label); pred }

let triangle_graph () =
  (* a triangle A->B->C->A plus a dangling A->B edge *)
  Digraph.of_edges ~labels:[| l "A"; l "B"; l "C"; l "A"; l "B" |]
    [ (0, 1); (1, 2); (2, 0); (3, 4) ]

let triangle_pattern () =
  Pattern.make_exn
    ~nodes:[| spec "A" "A"; spec "B" "B"; spec "C" "C" |]
    ~edges:[ (0, 1, Pattern.Bounded 1); (1, 2, Pattern.Bounded 1); (2, 0, Pattern.Bounded 1) ]
    ~output:0

let test_triangle_found () =
  let g = Snapshot.of_digraph (triangle_graph ()) in
  let embeddings = Subiso.embeddings (triangle_pattern ()) g in
  Alcotest.(check int) "exactly one embedding" 1 (List.length embeddings);
  match embeddings with
  | [ e ] -> Alcotest.(check (list int)) "the triangle" [ 0; 1; 2 ] (Array.to_list e)
  | _ -> Alcotest.fail "expected one"

let test_injectivity () =
  (* two pattern As in a graph with a single A that loops via B *)
  let g = Snapshot.of_digraph (Digraph.of_edges ~labels:[| l "A"; l "B" |] [ (0, 1); (1, 0) ]) in
  let p =
    Pattern.make_exn
      ~nodes:[| spec "A1" "A"; spec "B" "B"; spec "A2" "A" |]
      ~edges:[ (0, 1, Pattern.Bounded 1); (1, 2, Pattern.Bounded 1) ]
      ~output:0
  in
  Alcotest.(check bool) "no injective embedding" false (Subiso.exists p g);
  (* bounded simulation happily maps A1 and A2 to the same node *)
  let m = Bounded_sim.run p g in
  Alcotest.(check bool) "bsim matches" true (Match_relation.is_total m)

let test_bounds_ignored () =
  (* pattern edge with bound 3 still requires a DIRECT edge under iso *)
  let g = Snapshot.of_digraph (Digraph.of_edges ~labels:[| l "A"; l "X"; l "B" |] [ (0, 1); (1, 2) ]) in
  let p =
    Pattern.make_exn ~nodes:[| spec "A" "A"; spec "B" "B" |]
      ~edges:[ (0, 1, Pattern.Bounded 3) ]
      ~output:0
  in
  Alcotest.(check bool) "iso needs direct edge" false (Subiso.exists p g);
  Alcotest.(check bool) "bsim crosses the path" true
    (Match_relation.is_total (Bounded_sim.run p g))

let test_predicates_respected () =
  let g =
    Snapshot.of_digraph
      (Digraph.of_edges ~labels:[| l "A"; l "B" |]
         ~attrs:(fun i -> Attrs.of_list [ Attrs.int "exp" i ])
         [ (0, 1) ])
  in
  let ok = Pattern.make_exn ~nodes:[| spec "A" "A"; spec ~pred:(Predicate.ge_int "exp" 1) "B" "B" |]
      ~edges:[ (0, 1, Pattern.Bounded 1) ] ~output:0 in
  let too_strict = Pattern.make_exn
      ~nodes:[| spec ~pred:(Predicate.ge_int "exp" 1) "A" "A"; spec "B" "B" |]
      ~edges:[ (0, 1, Pattern.Bounded 1) ] ~output:0 in
  Alcotest.(check bool) "satisfying embedding" true (Subiso.exists ok g);
  Alcotest.(check bool) "predicate prunes" false (Subiso.exists too_strict g)

let test_cap () =
  (* a bipartite blowup with many embeddings; the cap stops enumeration *)
  let labels = Array.init 12 (fun i -> if i < 6 then l "A" else l "B") in
  let edges = List.concat_map (fun a -> List.init 6 (fun b -> (a, 6 + b))) (List.init 6 Fun.id) in
  let g = Snapshot.of_digraph (Digraph.of_edges ~labels edges) in
  let p =
    Pattern.make_exn ~nodes:[| spec "A" "A"; spec "B" "B" |]
      ~edges:[ (0, 1, Pattern.Bounded 1) ] ~output:0
  in
  Alcotest.(check int) "capped" 7 (List.length (Subiso.embeddings ~max_embeddings:7 p g));
  Alcotest.(check int) "all of them" 36 (List.length (Subiso.embeddings ~max_embeddings:10_000 p g))

(* The paper's Example 1 discussion: on Fig. 1, isomorphism and plain
   simulation both fail where bounded simulation succeeds. *)
let test_paper_semantics_comparison () =
  let g = Snapshot.of_digraph (Collab.graph ()) in
  let q = Collab.query () in
  Alcotest.(check bool) "subgraph isomorphism finds nothing" false (Subiso.exists q g);
  let sim_kernel = Simulation.run (Pattern.to_simulation q) g in
  Alcotest.(check bool) "plain simulation finds nothing" false
    (Match_relation.is_total sim_kernel);
  Alcotest.(check bool) "bounded simulation finds the experts" true
    (Match_relation.is_total (Bounded_sim.run q g))

let labels3 = Array.map Label.of_string [| "A"; "B"; "C" |]

let prop_embeddings_within_kernel seed =
  let rng = Prng.create seed in
  let n = 1 + Prng.int rng 20 in
  let g =
    Snapshot.of_digraph
      (Generators.erdos_renyi rng ~n ~m:(Prng.int rng (3 * n)) (fun _ ->
           (Prng.choose rng labels3, Attrs.of_list [ Attrs.int "exp" (Prng.int rng 3) ])))
  in
  let pattern =
    Pattern_gen.generate rng
      { Pattern_gen.default with nodes = 1 + Prng.int rng 3; extra_edges = Prng.int rng 2; max_bound = 2 }
      ~labels:labels3
  in
  let kernel = Bounded_sim.run pattern g in
  List.for_all
    (fun (u, v) -> Match_relation.mem kernel u v)
    (Subiso.matched_pairs ~max_embeddings:200 pattern g)

let qcheck_cases =
  [
    QCheck.Test.make ~count:80 ~name:"embeddings lie within the bsim kernel"
      QCheck.small_int (fun s -> prop_embeddings_within_kernel (s + 1));
  ]

let () =
  Alcotest.run "subiso"
    [
      ( "search",
        [
          Alcotest.test_case "triangle" `Quick test_triangle_found;
          Alcotest.test_case "injectivity" `Quick test_injectivity;
          Alcotest.test_case "bounds ignored" `Quick test_bounds_ignored;
          Alcotest.test_case "predicates" `Quick test_predicates_respected;
          Alcotest.test_case "cap" `Quick test_cap;
        ] );
      ( "semantics",
        [ Alcotest.test_case "paper example 1 comparison" `Quick test_paper_semantics_comparison ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_cases);
    ]
