(* Telemetry subsystem tests: histogram percentiles, counter
   saturation and gating, per-query profiles on the paper's Fig. 1
   example, answer invariance under the runtime flag, and a syntactic
   round-trip of the Chrome trace-event export. *)

open Expfinder_pattern
open Expfinder_core
open Expfinder_engine
open Expfinder_telemetry
module Collab = Expfinder_workload.Collab
module Replay = Expfinder_workload.Replay

(* Every test leaves the global flag off so suites in this binary do
   not leak telemetry state into each other. *)
let with_telemetry on f =
  set_enabled on;
  Fun.protect ~finally:(fun () -> set_enabled false) f

(* --- metrics ------------------------------------------------------------ *)

let test_histogram_percentiles () =
  let h = Histogram.create ~always:true "t.hist" in
  Alcotest.(check bool) "empty percentile is nan" true (Float.is_nan (Histogram.percentile h 0.5));
  for i = 1 to 100 do
    Histogram.observe h (float_of_int i)
  done;
  Alcotest.(check int) "count" 100 (Histogram.count h);
  Alcotest.(check (float 1e-6)) "sum" 5050.0 (Histogram.sum h);
  Alcotest.(check (float 1e-6)) "min" 1.0 (Histogram.min_value h);
  Alcotest.(check (float 1e-6)) "max" 100.0 (Histogram.max_value h);
  (* Buckets are geometric with ~9% relative resolution: the reported
     percentile is a bucket upper bound near the exact sample. *)
  let p50 = Histogram.percentile h 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "p50 = %.2f within 9%% of 50" p50)
    true
    (p50 >= 45.0 && p50 <= 56.0);
  let p99 = Histogram.percentile h 0.99 in
  Alcotest.(check bool)
    (Printf.sprintf "p99 = %.2f within [90, 100]" p99)
    true
    (p99 >= 90.0 && p99 <= 100.0);
  (* Never outside [min, max]; the top end clamps to the exact max. *)
  let p0 = Histogram.percentile h 0.0 in
  Alcotest.(check bool)
    (Printf.sprintf "p0 = %.4f within a bucket of min" p0)
    true
    (p0 >= 1.0 && p0 <= 1.1);
  Alcotest.(check (float 1e-6)) "p100 clamps to max" 100.0 (Histogram.percentile h 1.0);
  Histogram.reset h;
  Alcotest.(check int) "reset empties" 0 (Histogram.count h)

let test_histogram_edge_cases () =
  let h = Histogram.create ~always:true "t.hist.edge" in
  (* Empty: every percentile is nan, as are min and max. *)
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "empty p%.0f is nan" (100.0 *. p))
        true
        (Float.is_nan (Histogram.percentile h p)))
    [ 0.0; 0.5; 1.0 ];
  (* A single sample: clamping pins every percentile to that sample. *)
  Histogram.observe h 42.0;
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "single-sample p%.0f" (100.0 *. p))
        42.0 (Histogram.percentile h p))
    [ 0.0; 0.5; 1.0 ];
  Alcotest.(check int) "single-sample count" 1 (Histogram.count h);
  Histogram.reset h

let test_delta_across_reset_all () =
  let c = Metrics.counter ~always:true "t.reg.reset_delta" in
  Counter.reset c;
  Counter.add c 5;
  let before = Metrics.counters_snapshot () in
  Metrics.reset_all ();
  let after = Metrics.counters_snapshot () in
  (* Deltas spanning a reset go negative: pinned-down, documented
     behaviour the report layer must expect (not silently clamped). *)
  Alcotest.(check bool)
    "delta across reset_all is negative" true
    (List.assoc_opt "t.reg.reset_delta" (Metrics.delta ~before ~after) = Some (-5))

let test_counter_saturation () =
  let c = Counter.create ~always:true "t.sat" in
  Counter.add c (max_int - 2);
  Counter.add c 5;
  Alcotest.(check int) "add saturates at max_int" max_int (Counter.value c);
  Counter.incr c;
  Alcotest.(check int) "incr stays saturated" max_int (Counter.value c);
  Counter.reset c;
  Alcotest.(check int) "reset" 0 (Counter.value c)

let test_counter_gating () =
  let gated = Counter.create "t.gated" in
  let always = Counter.create ~always:true "t.always" in
  Counter.incr gated;
  Counter.incr always;
  Alcotest.(check int) "gated counter is a no-op when disabled" 0 (Counter.value gated);
  Alcotest.(check int) "always counter records when disabled" 1 (Counter.value always);
  with_telemetry true (fun () -> Counter.incr gated);
  Alcotest.(check int) "gated counter records when enabled" 1 (Counter.value gated)

(* --- per-query profiles ------------------------------------------------- *)

let test_profile_stage_tree () =
  with_telemetry true (fun () ->
      let engine = Engine.create (Collab.graph ()) in
      let q = Collab.query () in
      let experts = Engine.top_k engine q ~k:2 in
      Alcotest.(check int) "top-2 found" 2 (List.length experts);
      match Engine.last_profile engine with
      | None -> Alcotest.fail "enabled telemetry must produce a profile"
      | Some p ->
        Alcotest.(check string) "profile query" (Pattern.fingerprint q) p.Engine.query;
        let names = Span.preorder_names p.Engine.span in
        List.iter
          (fun stage ->
            Alcotest.(check bool)
              (Printf.sprintf "stage tree contains %S" stage)
              true (List.mem stage names))
          [ "topk"; "evaluate"; "plan"; "candidates"; "refine"; "rank" ];
        (* The refinement stage is nested under the evaluation, not a
           sibling of the root. *)
        (match Span.find p.Engine.span "evaluate" with
        | None -> Alcotest.fail "no evaluate span"
        | Some ev ->
          Alcotest.(check bool)
            "refine nested under evaluate" true
            (Span.find ev "refine" <> None));
        Alcotest.(check bool)
          "root duration is measurable" true
          (Span.duration_ms p.Engine.span >= 0.0);
        Alcotest.(check bool)
          "some counter moved during the query" true
          (List.exists (fun (_, v) -> v > 0) p.Engine.counters))

let test_disabled_no_profile () =
  let engine = Engine.create (Collab.graph ()) in
  let answer = Engine.evaluate engine (Collab.query ()) in
  Alcotest.(check bool) "no profile when disabled" true (answer.Engine.profile = None);
  Alcotest.(check bool) "no last_profile when disabled" true (Engine.last_profile engine = None)

let test_same_answers_when_disabled () =
  let run () =
    let engine = Engine.create (Collab.graph ()) in
    let q = Collab.query () in
    let answer = Engine.evaluate engine q in
    let experts =
      List.map (fun e -> (e.Engine.node, e.Engine.name, e.Engine.rank)) (Engine.top_k engine q ~k:3)
    in
    (List.sort compare (Match_relation.pairs answer.Engine.relation), answer.Engine.provenance, experts)
  in
  let off = run () in
  let on = with_telemetry true run in
  Alcotest.(check bool) "telemetry does not change answers" true (off = on)

(* --- Chrome trace export ------------------------------------------------ *)

(* A small JSON reader, enough to round-trip the exporter's output
   (the test suite has no JSON library to lean on). *)
type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      incr pos;
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> incr pos
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub text !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> incr pos
      | Some '\\' ->
        incr pos;
        (match peek () with
        | Some c ->
          incr pos;
          Buffer.add_char buf c
        | None -> fail "bad escape");
        loop ()
      | Some c ->
        incr pos;
        Buffer.add_char buf c;
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numeric = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when numeric c -> true | _ -> false) do
      incr pos
    done;
    match float_of_string_opt (String.sub text start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            members ((key, v) :: acc)
          | Some '}' ->
            incr pos;
            Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected , or }"
        in
        members []
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            elements (v :: acc)
          | Some ']' ->
            incr pos;
            Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ]"
        in
        elements []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "empty input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let test_chrome_trace_roundtrip () =
  with_telemetry true (fun () ->
      let (), span =
        collect "root" ~attrs:[ ("who", "test") ] (fun () ->
            with_span "child-a" (fun () -> annotate_int "items" 3);
            with_span "child-b" (fun () ->
                with_span "grandchild" (fun () -> ())))
      in
      let span = match span with Some s -> s | None -> Alcotest.fail "no root span" in
      let text = Span.to_chrome_json span in
      let events =
        match parse_json text with
        | Arr events -> events
        | _ -> Alcotest.fail "trace is not a JSON array"
        | exception Bad_json msg -> Alcotest.fail ("trace is not valid JSON: " ^ msg)
      in
      Alcotest.(check int) "one event per span" 4 (List.length events);
      let field name = function
        | Obj fields -> List.assoc_opt name fields
        | _ -> Alcotest.fail "event is not an object"
      in
      let names =
        List.map
          (fun e ->
            (match field "ph" e with
            | Some (Str "X") -> ()
            | _ -> Alcotest.fail "event is not a complete event");
            (match (field "ts" e, field "dur" e) with
            | Some (Num ts), Some (Num dur) ->
              Alcotest.(check bool) "timestamps are sane" true (ts >= 0.0 && dur >= 0.0)
            | _ -> Alcotest.fail "event lacks ts/dur");
            match field "name" e with
            | Some (Str name) -> name
            | _ -> Alcotest.fail "event lacks a name")
          events
      in
      Alcotest.(check (list string))
        "event names preserve the tree order"
        [ "root"; "child-a"; "child-b"; "grandchild" ]
        names;
      (* The root's annotations survive the export. *)
      match List.hd events with
      | Obj _ as root -> (
        match field "args" root with
        | Some (Obj args) ->
          Alcotest.(check bool) "root args kept" true (List.assoc_opt "who" args = Some (Str "test"))
        | _ -> Alcotest.fail "root lacks args")
      | _ -> ())

(* --- Json emitter/parser ------------------------------------------------ *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.Str "a \"quoted\"\nline\twith \\ specials");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("nothing", Json.Null);
        ("arr", Json.Arr [ Json.Int 1; Json.Float 2.25; Json.Str "x" ]);
        ("nested", Json.Obj [ ("empty_arr", Json.Arr []); ("empty_obj", Json.Obj []) ]);
      ]
  in
  (match Json.of_string (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "compact round-trip" true (v = v')
  | Error e -> Alcotest.fail ("compact parse failed: " ^ e));
  (match Json.of_string (Json.to_string ~pretty:true v) with
  | Ok v' -> Alcotest.(check bool) "pretty round-trip" true (v = v')
  | Error e -> Alcotest.fail ("pretty parse failed: " ^ e));
  (* Non-finite floats are emitted as null, never as bare words. *)
  Alcotest.(check string) "nan -> null" "null" (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string)
    "inf -> null" "null"
    (Json.to_string (Json.Float Float.infinity));
  (* Parse errors, not exceptions. *)
  Alcotest.(check bool) "trailing garbage rejected" true (Json.of_string "1 2" |> Result.is_error);
  Alcotest.(check bool) "unterminated string rejected" true (Json.of_string "\"x" |> Result.is_error);
  (* Accessors. *)
  let m = Json.member "i" v in
  Alcotest.(check (option int)) "member/int_opt" (Some (-42)) (Option.bind m Json.int_opt);
  Alcotest.(check (option (float 1e-9)))
    "float_opt accepts Int" (Some (-42.0))
    (Option.bind m Json.float_opt)

let test_metrics_to_json () =
  let c = Metrics.counter ~always:true "t.json.counter" in
  Counter.reset c;
  Counter.add c 3;
  let j = Metrics.to_json () in
  match Json.member "t.json.counter" j with
  | Some entry ->
    Alcotest.(check (option string))
      "kind" (Some "counter")
      (Option.bind (Json.member "kind" entry) Json.str_opt);
    Alcotest.(check (option int))
      "value" (Some 3)
      (Option.bind (Json.member "value" entry) Json.int_opt)
  | None -> Alcotest.fail "registered counter missing from Metrics.to_json"

(* --- structured reports ------------------------------------------------- *)

let test_report_stats () =
  let s = Report.stats_of_samples [ 4.0; 1.0; 3.0; 2.0 ] in
  Alcotest.(check (float 1e-9)) "even-count median is the middle-pair mean" 2.5 s.Report.median;
  Alcotest.(check (float 1e-9)) "q1" 1.75 s.Report.q1;
  Alcotest.(check (float 1e-9)) "q3" 3.25 s.Report.q3;
  Alcotest.(check (float 1e-9)) "iqr" 1.5 s.Report.iqr;
  let one = Report.stats_of_samples [ 7.0 ] in
  Alcotest.(check (float 1e-9)) "singleton median" 7.0 one.Report.median;
  Alcotest.(check (float 1e-9)) "singleton iqr" 0.0 one.Report.iqr;
  Alcotest.(check bool)
    "empty stats are nan" true
    (Float.is_nan (Report.stats_of_samples []).Report.median)

let with_tmpfile f =
  let path = Filename.temp_file "expfinder-report" ".json" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let make_report samples_by_id =
  let r = Report.create ~mode:"test" () in
  List.iter
    (fun (id, samples) ->
      Report.add r ~id ~params:[ ("n", Json.Int 2000) ] samples)
    samples_by_id;
  r

let test_report_write_load () =
  with_tmpfile (fun path ->
      let r = make_report [ ("EXP-Q1.bsim.n=2000", [ 1.0; 2.0; 3.0 ]); ("EXP-K1", [ 0.5 ]) ] in
      Report.write r path;
      match Report.load path with
      | Error e -> Alcotest.fail ("load failed: " ^ e)
      | Ok loaded -> (
        match Report.records loaded with
        | [ a; b ] ->
          Alcotest.(check string) "id" "EXP-Q1.bsim.n=2000" a.Report.id;
          Alcotest.(check string) "experiment derived from id" "EXP-Q1" a.Report.experiment;
          Alcotest.(check (list (float 1e-9)))
            "raw samples survive" [ 1.0; 2.0; 3.0 ]
            a.Report.stats.Report.samples;
          Alcotest.(check (float 1e-9)) "median recomputed" 2.0 a.Report.stats.Report.median;
          Alcotest.(check string) "second id" "EXP-K1" b.Report.id
        | records -> Alcotest.fail (Printf.sprintf "expected 2 records, got %d" (List.length records))))

let test_report_rejects_other_schema () =
  with_tmpfile (fun path ->
      let oc = open_out path in
      output_string oc "{\"schema_version\": 999, \"records\": []}";
      close_out oc;
      Alcotest.(check bool) "future schema rejected" true (Report.load path |> Result.is_error))

let test_report_diff () =
  let baseline =
    make_report [ ("a", [ 10.0; 10.1; 10.2 ]); ("b", [ 5.0; 5.1; 5.2 ]); ("gone", [ 1.0 ]) ]
  in
  (* a regressed 2.5x with a disjoint spread; b is within noise. *)
  let candidate =
    make_report [ ("a", [ 25.0; 25.1; 25.2 ]); ("b", [ 5.1; 5.2; 5.3 ]); ("new", [ 1.0 ]) ]
  in
  let comparisons = Report.diff ~baseline ~candidate () in
  let verdict id =
    (List.find (fun c -> c.Report.cid = id) comparisons).Report.verdict
  in
  Alcotest.(check bool) "2.5x slowdown is a regression" true (verdict "a" = Report.Regression);
  Alcotest.(check bool) "noise-level change is unchanged" true (verdict "b" = Report.Unchanged);
  Alcotest.(check bool) "removed record tracked" true (verdict "gone" = Report.Removed);
  Alcotest.(check bool) "added record tracked" true (verdict "new" = Report.Added);
  Alcotest.(check bool) "has_regression" true (Report.has_regression comparisons);
  (* A report diffed against itself is entirely quiet. *)
  let self = Report.diff ~baseline ~candidate:baseline () in
  Alcotest.(check bool)
    "self-diff has no regressions or improvements" true
    (List.for_all (fun c -> c.Report.verdict = Report.Unchanged) self)

let test_report_diff_iqr_noise_rule () =
  (* Median grew >50% but the spreads overlap: noisy, not a regression. *)
  let baseline = make_report [ ("x", [ 1.0; 2.0; 9.0 ]) ] in
  let candidate = make_report [ ("x", [ 1.5; 3.5; 8.0 ]) ] in
  match Report.diff ~baseline ~candidate () with
  | [ c ] ->
    Alcotest.(check bool)
      "overlapping IQRs suppress the verdict" true
      (c.Report.verdict = Report.Unchanged)
  | _ -> Alcotest.fail "expected one comparison"

(* --- flight recorder ---------------------------------------------------- *)

let test_recorder_ring () =
  Recorder.clear ();
  Recorder.set_slow_threshold_ms (Some 1.0);
  Fun.protect
    ~finally:(fun () ->
      Recorder.set_slow_threshold_ms None;
      Recorder.clear ())
    (fun () ->
      for i = 1 to Recorder.capacity () + 5 do
        Recorder.record
          ~query:(Printf.sprintf "q%d" i)
          ~strategy:"direct/simulation"
          ~duration_ms:(if i mod 10 = 0 then 2.0 else 0.1)
          ~counters:[ ("engine.queries", 1) ]
          ()
      done;
      let events = Recorder.recent () in
      Alcotest.(check int) "ring keeps the last capacity events" (Recorder.capacity ())
        (List.length events);
      (match (events, List.rev events) with
      | oldest :: _, newest :: _ ->
        Alcotest.(check string) "oldest survivor" "q6" oldest.Recorder.query;
        Alcotest.(check string) "newest event" (Printf.sprintf "q%d" (Recorder.capacity () + 5))
          newest.Recorder.query;
        Alcotest.(check bool) "sequence numbers increase" true
          (newest.Recorder.seq > oldest.Recorder.seq)
      | _ -> Alcotest.fail "empty recorder");
      Alcotest.(check bool)
        "slow events flagged by the threshold" true
        (Recorder.slow_events () <> []
        && List.for_all (fun e -> e.Recorder.duration_ms >= 1.0) (Recorder.slow_events ()));
      (* The dump is valid JSON with the counter deltas attached. *)
      (match Json.of_string (Json.to_string (Recorder.to_json ())) with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("recorder JSON invalid: " ^ e));
      Recorder.clear ();
      Alcotest.(check (list reject)) "clear empties" [] (Recorder.recent ()))

let test_recorder_captures_engine_queries () =
  Recorder.clear ();
  Fun.protect
    ~finally:(fun () -> Recorder.clear ())
    (fun () ->
      let engine = Engine.create (Collab.graph ()) in
      let q = Collab.query () in
      (* Recording itself is always on; the registered counters only move
         with telemetry enabled, so enable it to see the deltas. *)
      with_telemetry true (fun () ->
          let (_ : Engine.answer) = Engine.evaluate engine q in
          let (_ : Engine.answer) = Engine.evaluate engine q in
          ());
      match Recorder.recent () with
      | [ first; second ] ->
        Alcotest.(check string)
          "query digest recorded" (Pattern.fingerprint q) first.Recorder.query;
        Alcotest.(check bool)
          "cold query went direct" true
          (String.length first.Recorder.strategy >= 7
          && String.sub first.Recorder.strategy 0 7 = "direct/");
        Alcotest.(check string) "warm query hit the cache" "cache" second.Recorder.strategy;
        Alcotest.(check bool)
          "per-query counter deltas captured" true
          (List.assoc_opt "engine.queries" first.Recorder.counters = Some 1
          && List.mem_assoc "engine.answers.direct" first.Recorder.counters)
      | events ->
        Alcotest.fail
          (Printf.sprintf "expected 2 recorded events, got %d" (List.length events)))

(* --- registry ----------------------------------------------------------- *)

let test_registry_snapshot_delta () =
  let c = Metrics.counter ~always:true "t.reg.counter" in
  Counter.reset c;
  let before = Metrics.counters_snapshot () in
  Counter.add c 7;
  let after = Metrics.counters_snapshot () in
  let delta = Metrics.delta ~before ~after in
  Alcotest.(check bool)
    "delta isolates the moved counter" true
    (List.assoc_opt "t.reg.counter" delta = Some 7);
  Alcotest.(check bool)
    "unmoved counters are dropped from the delta" true
    (List.for_all (fun (_, v) -> v <> 0) delta)

(* --- sliding windows ---------------------------------------------------- *)

let test_window_sliding () =
  let w = Window.create ~seconds:10 "t.win.slide" in
  let t0 = 1000.0 in
  (* One request per second for 10 seconds fills the whole ring. *)
  for i = 0 to 9 do
    Window.observe w ~now:(t0 +. float_of_int i) 10.0
  done;
  let s = Window.summary ~now:(t0 +. 9.0) w in
  Alcotest.(check int) "full window count" 10 s.Window.count;
  Alcotest.(check (float 1e-9)) "qps = count / window" 1.0 s.Window.qps;
  Alcotest.(check int) "no errors" 0 s.Window.errors;
  (* Six seconds later only the four youngest buckets are still inside
     the window; the rest are stale and skipped on read. *)
  let s = Window.summary ~now:(t0 +. 15.0) w in
  Alcotest.(check int) "stale buckets fall out" 4 s.Window.count;
  (* Far in the future the window is empty again — without any write. *)
  let s = Window.summary ~now:(t0 +. 100.0) w in
  Alcotest.(check int) "fully drained" 0 s.Window.count;
  Alcotest.(check (float 1e-9)) "empty qps" 0.0 s.Window.qps;
  Alcotest.(check bool) "empty p95 is nan" true (Float.is_nan s.Window.p95);
  (* Writing a slot in a later second reclaims it instead of merging. *)
  Window.observe w ~now:(t0 +. 20.0) 5.0;
  let s = Window.summary ~now:(t0 +. 20.0) w in
  Alcotest.(check int) "reclaimed slot holds one sample" 1 s.Window.count;
  Alcotest.(check (float 1e-9)) "max of the survivor" 5.0 s.Window.max_ms

let test_window_percentiles_and_errors () =
  let w = Window.create ~seconds:60 "t.win.pct" in
  let now = 5000.0 in
  for i = 1 to 100 do
    Window.observe w ~now ~error:(i mod 10 = 0) (float_of_int i)
  done;
  let s = Window.summary ~now w in
  Alcotest.(check int) "count" 100 s.Window.count;
  Alcotest.(check int) "errors" 10 s.Window.errors;
  Alcotest.(check (float 1e-9)) "error rate" 0.1 s.Window.error_rate;
  Alcotest.(check bool)
    (Printf.sprintf "p50 = %.2f within 9%% of 50" s.Window.p50)
    true
    (s.Window.p50 >= 45.0 && s.Window.p50 <= 56.0);
  Alcotest.(check bool)
    (Printf.sprintf "p99 = %.2f within [90, 100]" s.Window.p99)
    true
    (s.Window.p99 >= 90.0 && s.Window.p99 <= 100.0);
  Alcotest.(check (float 1e-9)) "max clamps exactly" 100.0 s.Window.max_ms;
  Alcotest.(check (float 1e-6)) "mean" 50.5 s.Window.mean_ms

let test_window_summary_json_roundtrip () =
  let w = Window.create ~seconds:60 "t.win.json" in
  let now = 6000.0 in
  Window.observe w ~now 1.5;
  Window.observe w ~now ~error:true 3.0;
  let s = Window.summary ~now w in
  (match Window.summary_of_json (Window.summary_json s) with
  | None -> Alcotest.fail "summary_json did not parse back"
  | Some s' ->
    Alcotest.(check int) "count survives" s.Window.count s'.Window.count;
    Alcotest.(check int) "errors survive" s.Window.errors s'.Window.errors;
    Alcotest.(check (float 1e-9)) "qps survives" s.Window.qps s'.Window.qps;
    Alcotest.(check (float 1e-9)) "p95 survives" s.Window.p95 s'.Window.p95);
  (* An empty window's nan percentiles serialize as null and come back
     as nan, not as a parse failure. *)
  let empty = Window.summary ~now (Window.create ~seconds:60 "t.win.empty") in
  match Window.summary_of_json (Window.summary_json empty) with
  | None -> Alcotest.fail "empty summary did not parse back"
  | Some e -> Alcotest.(check bool) "nan p50 roundtrips" true (Float.is_nan e.Window.p50)

(* --- query log ---------------------------------------------------------- *)

let with_qlog_sink path f =
  Qlog.set_sink (Some path);
  Fun.protect
    ~finally:(fun () ->
      Qlog.set_sink None;
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists (path ^ ".1") then Sys.remove (path ^ ".1"))
    f

let test_qlog_emit_load_roundtrip () =
  let path = Filename.temp_file "expfinder-qlog" ".jsonl" in
  with_qlog_sink path (fun () ->
      Alcotest.(check bool) "sink configured" true (Qlog.enabled ());
      Qlog.emit ~kind:Qlog.Query ~graph_id:7 ~epoch:3 ~query:"fp1" ~strategy:"direct"
        ~duration_ms:1.25
        ~counters:[ ("bsim.sweeps", 2) ]
        ~pairs:9 ~digest:"abc123" ~payload:(Json.Str "pattern-text") ();
      Qlog.emit ~kind:Qlog.Update ~graph_id:7 ~epoch:4 ~query:"update" ~strategy:"updates"
        ~duration_ms:0.5 ~counters:[] ~pairs:2 ~digest:"" ~error:"boom" ();
      Qlog.close ();
      match Qlog.load path with
      | Error e -> Alcotest.fail e
      | Ok [ e1; e2 ] ->
        Alcotest.(check bool) "kinds survive" true
          (e1.Qlog.kind = Qlog.Query && e2.Qlog.kind = Qlog.Update);
        Alcotest.(check int) "graph id survives" 7 e1.Qlog.graph_id;
        Alcotest.(check int) "epoch survives" 4 e2.Qlog.epoch;
        Alcotest.(check string) "digest survives" "abc123" e1.Qlog.digest;
        Alcotest.(check bool) "seq is monotonic" true (e2.Qlog.seq > e1.Qlog.seq);
        Alcotest.(check bool) "counters survive" true
          (e1.Qlog.counters = [ ("bsim.sweeps", 2) ]);
        Alcotest.(check bool) "payload survives" true
          (e1.Qlog.payload = Some (Json.Str "pattern-text"));
        Alcotest.(check bool) "error survives" true (e2.Qlog.error = Some "boom");
        Alcotest.(check bool) "no payload stays absent" true (e2.Qlog.payload = None)
      | Ok events -> Alcotest.failf "expected 2 events, loaded %d" (List.length events))

let test_qlog_event_json_rejects_other_schema () =
  let bad =
    Json.Obj
      [ ("v", Json.Int 999); ("seq", Json.Int 0); ("kind", Json.Str "query"); ("query", Json.Str "x") ]
  in
  match Qlog.event_of_json bad with
  | Ok _ -> Alcotest.fail "schema version 999 should be rejected"
  | Error e -> Alcotest.(check bool) "error names the version" true (String.length e > 0)

let test_qlog_rotation () =
  let path = Filename.temp_file "expfinder-qlog-rot" ".jsonl" in
  let old_max = Qlog.max_bytes () in
  Qlog.set_max_bytes 4096;
  Fun.protect
    ~finally:(fun () -> Qlog.set_max_bytes old_max)
    (fun () ->
      with_qlog_sink path (fun () ->
          (* Each event is ~150 bytes; 100 of them must cross the 4 KiB
             ceiling and rotate at least once. *)
          for i = 0 to 99 do
            Qlog.emit ~kind:Qlog.Query ~graph_id:1 ~epoch:i ~query:"fp-rotation"
              ~strategy:"direct" ~duration_ms:0.1 ~counters:[] ~pairs:1 ~digest:"d" ()
          done;
          Qlog.close ();
          Alcotest.(check bool) "archived generation exists" true
            (Sys.file_exists (path ^ ".1"));
          let size p = (Unix.stat p).Unix.st_size in
          Alcotest.(check bool) "live file stayed under the ceiling" true (size path <= 4096);
          Alcotest.(check bool) "archive stayed under the ceiling" true
            (size (path ^ ".1") <= 4096);
          (* Both generations still parse, and together they kept the
             newest events. *)
          match (Qlog.load path, Qlog.load (path ^ ".1")) with
          | Ok live, Ok archived ->
            Alcotest.(check bool) "both generations parse" true
              (live <> [] && archived <> []);
            let last = List.nth live (List.length live - 1) in
            Alcotest.(check int) "newest event survived" 99 last.Qlog.epoch
          | Error e, _ | _, Error e -> Alcotest.fail e))

(* Sink I/O failures disable the log instead of raising into the
   serving path: emitting to a path whose directory does not exist must
   return normally and leave the sink off. *)
let test_qlog_unwritable_sink_disables () =
  Qlog.set_sink (Some "/nonexistent-expfinder-dir/qlog.jsonl");
  Fun.protect
    ~finally:(fun () -> Qlog.set_sink None)
    (fun () ->
      Alcotest.(check bool) "sink configured" true (Qlog.enabled ());
      Qlog.emit ~kind:Qlog.Query ~graph_id:1 ~epoch:0 ~query:"fp" ~strategy:"direct"
        ~duration_ms:0.1 ~counters:[] ~pairs:0 ~digest:"d" ();
      Alcotest.(check bool) "sink disabled after the failure" false (Qlog.enabled ());
      (* Further emits are no-ops, not repeated failures. *)
      Qlog.emit ~kind:Qlog.Query ~graph_id:1 ~epoch:1 ~query:"fp" ~strategy:"direct"
        ~duration_ms:0.1 ~counters:[] ~pairs:0 ~digest:"d" ())

(* Replay must verify across a rotation boundary: capture enough served
   queries to rotate the log, then replay the concatenation of the
   archived and live generations against a fresh engine. *)
let test_qlog_replay_across_rotation () =
  let path = Filename.temp_file "expfinder-qlog-replay" ".jsonl" in
  let old_max = Qlog.max_bytes () in
  Qlog.set_max_bytes 4096;
  Fun.protect
    ~finally:(fun () -> Qlog.set_max_bytes old_max)
    (fun () ->
      with_qlog_sink path (fun () ->
          with_telemetry true (fun () ->
              let engine = Engine.create (Collab.graph ()) in
              let q = Collab.query () in
              for _ = 1 to 60 do
                ignore (Engine.evaluate engine q : Engine.answer)
              done;
              Qlog.close ();
              Alcotest.(check bool) "log rotated" true (Sys.file_exists (path ^ ".1"));
              let load p =
                match Qlog.load p with Ok e -> e | Error e -> Alcotest.fail e
              in
              let archived = load (path ^ ".1") and live = load path in
              Alcotest.(check bool) "both generations hold events" true
                (archived <> [] && live <> []);
              let events = archived @ live in
              (* The archive is the generation written immediately before
                 the live file: sequence numbers must be contiguous
                 across the boundary, or rotation dropped events. *)
              let rec contiguous = function
                | a :: (b :: _ as t) -> b.Qlog.seq = a.Qlog.seq + 1 && contiguous t
                | _ -> true
              in
              Alcotest.(check bool) "seq contiguous across the boundary" true
                (contiguous events);
              Qlog.set_sink None;
              let fresh = Engine.create (Collab.graph ()) in
              let summary = Replay.run fresh events in
              Alcotest.(check int) "no digest mismatches" 0 summary.Replay.mismatches;
              Alcotest.(check int) "every event replayed" summary.Replay.total
                summary.Replay.replayed)))

(* --- timeseries --------------------------------------------------------- *)

(* Ring math with a pinned clock: per-slot merging, exact downsampling
   into the coarse ring, and wrap-around expiry once the fine ring's
   span passes. *)
let test_timeseries_ring_math () =
  let module T = Timeseries in
  let ts = T.create ~resolutions:[ (1, 4); (10, 6) ] () in
  Alcotest.(check (list (pair int int))) "resolutions floor/sort" [ (1, 4); (10, 6) ]
    (T.resolutions ts);
  let base = 1_000_000.0 in
  (* Two samples in one second merge into one slot. *)
  T.record ~now:base ts T.Level "lvl" 5.0;
  T.record ~now:(base +. 0.4) ts T.Level "lvl" 3.0;
  T.record ~now:(base +. 1.0) ts T.Level "lvl" 7.0;
  (match T.points ~now:(base +. 1.0) ts ~seconds:4 "lvl" with
  | [ p0; p1 ] ->
    Alcotest.(check int) "slot 0 merged two samples" 2 p0.T.n;
    Alcotest.(check (float 1e-9)) "slot 0 sum" 8.0 p0.T.sum;
    Alcotest.(check (float 1e-9)) "slot 0 min" 3.0 p0.T.vmin;
    Alcotest.(check (float 1e-9)) "slot 0 max" 5.0 p0.T.vmax;
    Alcotest.(check (float 1e-9)) "slot 0 last" 3.0 p0.T.last;
    Alcotest.(check int) "points come back oldest first" 1 (p1.T.t_unix - p0.T.t_unix)
  | ps -> Alcotest.failf "expected 2 points, got %d" (List.length ps));
  Alcotest.(check bool) "kind registered" true (T.kind_of ts "lvl" = Some T.Level);
  (* The coarse ring is an exact downsample: same records, one slot. *)
  (match T.points ~now:(base +. 1.0) ts ~seconds:40 "lvl" with
  | [ p ] ->
    Alcotest.(check int) "coarse slot merged all three" 3 p.T.n;
    Alcotest.(check (float 1e-9)) "coarse sum" 15.0 p.T.sum;
    Alcotest.(check int) "coarse resolution" 10 p.T.res_s
  | ps -> Alcotest.failf "expected 1 coarse point, got %d" (List.length ps));
  (* Wrap-around: 4 slots of 1 s — recording 6 s later reuses indexes
     and must expire the stale slots rather than resurface them. *)
  T.record ~now:(base +. 6.0) ts T.Level "lvl" 100.0;
  (match T.points ~now:(base +. 6.0) ts ~seconds:4 "lvl" with
  | [ p ] -> Alcotest.(check (float 1e-9)) "only the fresh slot survives" 100.0 p.T.last
  | ps -> Alcotest.failf "expected 1 point after wrap, got %d" (List.length ps));
  (* Rate series aggregate by summing. *)
  T.record ~now:(base +. 6.0) ts T.Rate "rate" 4.0;
  T.record ~now:(base +. 7.0) ts T.Rate "rate" 5.0;
  Alcotest.(check (float 1e-9)) "window_sum sums rate deltas" 9.0
    (T.window_sum ~now:(base +. 7.0) ts ~seconds:4 "rate");
  (* Non-finite samples are dropped, not retained as poison. *)
  T.record ~now:(base +. 7.0) ts T.Level "lvl" Float.nan;
  Alcotest.(check int) "nan dropped" 1
    (List.length (T.points ~now:(base +. 7.0) ts ~seconds:2 "lvl"))

let test_timeseries_to_json_shape () =
  let module T = Timeseries in
  let ts = T.create () in
  Alcotest.(check (list (pair int int)))
    "default retention is 1s/10s/60s" [ (1, 120); (10, 360); (60, 720) ] (T.resolutions ts);
  let now = 2_000_000.0 in
  T.record ~now ts T.Level "a" 1.0;
  T.record ~now ts T.Rate "b" 2.0;
  let doc = T.to_json ~now ~max_points:10 ts in
  (match Option.bind (Json.member "resolutions" doc) Json.list_opt with
  | Some rings ->
    Alcotest.(check int) "one document entry per resolution" 3 (List.length rings);
    List.iter
      (fun ring ->
        match Option.bind (Json.member "series" ring) (fun s -> Json.member "a" s) with
        | Some (Json.Arr [ Json.Arr (Json.Int _ :: _) ]) -> ()
        | _ -> Alcotest.fail "series 'a' must appear as one point array in every ring")
      rings
  | None -> Alcotest.fail "document lacks resolutions");
  match Option.bind (Json.member "series_kinds" doc) (fun k -> Json.member "b" k) with
  | Some (Json.Str "rate") -> ()
  | _ -> Alcotest.fail "series_kinds must carry the rate kind"

let test_timeseries_capture_load_report () =
  let module T = Timeseries in
  let path = Filename.temp_file "expfinder-ts" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc
        "{\"v\":1,\"ts_unix\":100.0,\"fields\":{\"win.query.qps\":2.0,\"process.rss_bytes\":1000}}\n\n\
         {\"v\":1,\"ts_unix\":101.0,\"fields\":{\"win.query.qps\":4.0,\"process.rss_bytes\":1100}}\n";
      close_out oc;
      match T.load path with
      | Error e -> Alcotest.fail e
      | Ok ticks ->
        Alcotest.(check int) "two ticks (blank line skipped)" 2 (List.length ticks);
        Alcotest.(check (float 1e-9)) "timestamps parse" 100.0 (List.hd ticks).T.ts_unix;
        let r = T.report ticks in
        let ids = List.map (fun rec_ -> rec_.Report.id) (Report.records r) in
        Alcotest.(check bool) "one record per series" true
          (List.mem "TS.win.query.qps" ids && List.mem "TS.process.rss_bytes" ids))

let test_timeseries_load_rejects_garbage () =
  let path = Filename.temp_file "expfinder-ts-bad" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "{\"v\":1,\"ts_unix\":1.0,\"fields\":{}}\nnot json\n";
      close_out oc;
      match Timeseries.load path with
      | Ok _ -> Alcotest.fail "garbage line must be rejected"
      | Error e ->
        Alcotest.(check bool) "error names the line" true
          (String.length e > 0
          && String.fold_left (fun acc c -> acc || c = '2') false e))

(* --- SLO burn-rate alerts ----------------------------------------------- *)

(* Compressed windows (fast 4 s / slow 16 s) so the fire -> clear cycle
   runs in simulated, pinned time. *)
let test_slo_fire_and_clear () =
  let module T = Timeseries in
  let ts = T.create ~resolutions:[ (1, 120) ] () in
  Slo.set_objectives
    [
      Slo.availability ~fast_s:4 ~slow_s:16 ~fast_burn:2.0 ~slow_burn:1.5 ~op:"query"
        ~target:0.9 ();
    ];
  Fun.protect
    ~finally:(fun () -> Slo.set_objectives [])
    (fun () ->
      let base = 3_000_000.0 in
      (* Healthy traffic: 10 req/s, no errors. *)
      for i = 0 to 15 do
        let now = base +. float_of_int i in
        T.record ~now ts T.Rate "req.query" 10.0;
        T.record ~now ts T.Rate "err.query" 0.0
      done;
      (match Slo.evaluate ~now:(base +. 15.0) ~ts () with
      | [ a ] -> Alcotest.(check bool) "healthy run passes" true (a.Slo.state = Slo.Passing)
      | _ -> Alcotest.fail "one objective, one alert");
      (* Outage: every request errors.  Budget is 0.1, so burn = 10x in
         both windows once the slow window fills with bad seconds. *)
      for i = 16 to 31 do
        let now = base +. float_of_int i in
        T.record ~now ts T.Rate "req.query" 10.0;
        T.record ~now ts T.Rate "err.query" 10.0
      done;
      (match Slo.evaluate ~now:(base +. 31.0) ~ts () with
      | [ a ] ->
        Alcotest.(check bool) "outage fires" true (a.Slo.state = Slo.Firing);
        Alcotest.(check bool) "fast burn exceeds threshold" true (a.Slo.burn_fast >= 2.0);
        Alcotest.(check bool) "slow burn exceeds threshold" true (a.Slo.burn_slow >= 1.5)
      | _ -> Alcotest.fail "one objective, one alert");
      (* Firing state surfaces in the document and the firing list. *)
      Alcotest.(check int) "firing list has the alert" 1 (List.length (Slo.firing ()));
      (match Json.member "alerts" (Slo.to_json ~now:(base +. 31.0) ()) with
      | Some (Json.Arr [ a ]) ->
        Alcotest.(check bool) "document says firing" true
          (Json.member "firing" a = Some (Json.Bool true))
      | _ -> Alcotest.fail "alerts document shape");
      (* Recovery: a healthy fast window clears the alert even while the
         slow window still remembers the outage (multi-window rule). *)
      for i = 32 to 40 do
        let now = base +. float_of_int i in
        T.record ~now ts T.Rate "req.query" 10.0;
        T.record ~now ts T.Rate "err.query" 0.0
      done;
      match Slo.evaluate ~now:(base +. 40.0) ~ts () with
      | [ a ] -> Alcotest.(check bool) "recovery clears" true (a.Slo.state = Slo.Passing)
      | _ -> Alcotest.fail "one objective, one alert")

let test_slo_latency_objective () =
  let module T = Timeseries in
  let ts = T.create ~resolutions:[ (1, 120) ] () in
  Slo.set_objectives
    [
      Slo.latency_p99 ~fast_s:4 ~slow_s:8 ~fast_burn:1.0 ~slow_burn:1.0 ~op:"query"
        ~threshold_ms:10.0 ~target:0.5 ();
    ];
  Fun.protect
    ~finally:(fun () -> Slo.set_objectives [])
    (fun () ->
      let base = 4_000_000.0 in
      for i = 0 to 8 do
        T.record ~now:(base +. float_of_int i) ts T.Level "win.query.p99_ms" 50.0
      done;
      match Slo.evaluate ~now:(base +. 8.0) ~ts () with
      | [ a ] ->
        Alcotest.(check bool) "sustained p99 violation fires" true (a.Slo.state = Slo.Firing)
      | _ -> Alcotest.fail "one objective, one alert")

(* --- prometheus --------------------------------------------------------- *)

let contains_line body line = List.mem line (String.split_on_char '\n' body)

let contains_substr haystack needle =
  let n = String.length haystack and k = String.length needle in
  let rec scan i = i + k <= n && (String.sub haystack i k = needle || scan (i + 1)) in
  scan 0

let test_prometheus_collision_and_metadata () =
  with_telemetry true (fun () ->
      (* "a.b" and "a:b" both sanitize to expfinder_collide_a_b: the
         render must keep them distinct, deterministically. *)
      let c1 = Metrics.counter ~always:true "collide.a.b" in
      let c2 = Metrics.counter ~always:true "collide.a:b" in
      Counter.incr c1;
      Counter.add c2 2;
      ignore (process_stats () : (string * int) list);
      let body = Prometheus.render () in
      let names =
        List.filter_map
          (fun l ->
            if String.length l > 0 && l.[0] <> '#' then
              match String.index_opt l ' ' with
              | Some i -> Some (String.sub l 0 i)
              | None -> None
            else None)
          (String.split_on_char '\n' body)
      in
      let collide = List.filter (fun n -> contains_substr n "expfinder_collide_a_b") names in
      let uniq = List.sort_uniq compare collide in
      Alcotest.(check int) "both colliding families exported" 2 (List.length uniq);
      (* Every collider is disambiguated with a digest suffix; the bare
         sanitized token would be ambiguous, so nobody keeps it. *)
      Alcotest.(check bool) "no collider keeps the ambiguous plain name" false
        (List.mem "expfinder_collide_a_b" uniq);
      (* Same input, same disambiguation. *)
      let body2 = Prometheus.render () in
      let pick b =
        List.sort_uniq compare
          (List.filter (fun n -> contains_substr n "expfinder_collide_a_b")
             (List.filter_map
                (fun l ->
                  if String.length l > 0 && l.[0] <> '#' then
                    Option.map (fun i -> String.sub l 0 i) (String.index_opt l ' ')
                  else None)
                (String.split_on_char '\n' b)))
      in
      Alcotest.(check (list string)) "disambiguation is deterministic" (pick body) (pick body2);
      (* Every sample's family carries # HELP and # TYPE. *)
      let lines = String.split_on_char '\n' body in
      let helped =
        List.filter_map
          (fun l ->
            match String.split_on_char ' ' l with
            | "#" :: "HELP" :: name :: _ -> Some name
            | _ -> None)
          lines
      in
      let typed =
        List.filter_map
          (fun l ->
            match String.split_on_char ' ' l with
            | "#" :: "TYPE" :: name :: _ -> Some name
            | _ -> None)
          lines
      in
      let strip_suffix s suf =
        let ls = String.length s and lf = String.length suf in
        if ls > lf && String.sub s (ls - lf) lf = suf then String.sub s 0 (ls - lf)
        else s
      in
      List.iter
        (fun n ->
          let base =
            match String.index_opt n '{' with Some i -> String.sub n 0 i | None -> n
          in
          (* Summary families expose [_sum]/[_count] samples whose
             metadata lives on the base family name. *)
          let family =
            if List.mem base helped then base
            else strip_suffix (strip_suffix base "_sum") "_count"
          in
          Alcotest.(check bool) (family ^ " has HELP") true (List.mem family helped);
          Alcotest.(check bool) (family ^ " has TYPE") true (List.mem family typed))
        names;
      (* The uptime satellite: a first-class gauge with a stable name. *)
      Alcotest.(check bool) "uptime gauge exported" true
        (List.mem "expfinder_uptime_seconds" names))

let test_prometheus_alert_gauges () =
  let module T = Timeseries in
  let ts = T.create ~resolutions:[ (1, 120) ] () in
  Slo.set_objectives
    [ Slo.availability ~fast_s:4 ~slow_s:8 ~fast_burn:1.0 ~slow_burn:1.0 ~op:"query" ~target:0.9 () ]
  ;
  Fun.protect
    ~finally:(fun () -> Slo.set_objectives [])
    (fun () ->
      let base = 5_000_000.0 in
      for i = 0 to 8 do
        let now = base +. float_of_int i in
        T.record ~now ts T.Rate "req.query" 10.0;
        T.record ~now ts T.Rate "err.query" 10.0
      done;
      ignore (Slo.evaluate ~now:(base +. 8.0) ~ts () : Slo.alert list);
      let body = Prometheus.render () in
      Alcotest.(check bool) "firing alert exported as 1" true
        (contains_line body
           "expfinder_alert_active{alert=\"query-availability\",op=\"query\"} 1");
      Alcotest.(check bool) "burn gauges exported" true
        (contains_substr body
           "expfinder_alert_burn{alert=\"query-availability\",op=\"query\",window=\"fast\"}"))

(* --- postmortem --------------------------------------------------------- *)

let test_postmortem_roundtrip () =
  let dir = Filename.temp_file "expfinder-pm" "" in
  Sys.remove dir;
  let old = Postmortem.dir () in
  Postmortem.set_dir (Some dir);
  Fun.protect
    ~finally:(fun () ->
      Postmortem.set_dir old;
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () ->
      match Postmortem.write ~reason:"unit-test crash" () with
      | None -> Alcotest.fail "postmortem write failed with a configured dir"
      | Some path ->
        Alcotest.(check bool) "artifact exists" true (Sys.file_exists path);
        Alcotest.(check bool) "no tmp file left behind" false (Sys.file_exists (path ^ ".tmp"));
        (match Postmortem.load path with
        | Error e -> Alcotest.fail e
        | Ok doc ->
          Alcotest.(check bool) "reason survives" true
            (Json.member "reason" doc = Some (Json.Str "unit-test crash"));
          Alcotest.(check bool) "pid recorded" true
            (Json.member "pid" doc = Some (Json.Int (Unix.getpid ())));
          Alcotest.(check bool) "gc stats present" true (Json.member "gc" doc <> None);
          Alcotest.(check bool) "alerts embedded" true (Json.member "alerts" doc <> None);
          Alcotest.(check bool) "timeseries embedded" true
            (Json.member "timeseries" doc <> None);
          let pretty = Format.asprintf "%a" Postmortem.pp doc in
          Alcotest.(check bool) "pp mentions the reason" true
            (contains_substr pretty "unit-test crash")))

let test_postmortem_without_dir_is_inert () =
  let old = Postmortem.dir () in
  Postmortem.set_dir None;
  Fun.protect
    ~finally:(fun () -> Postmortem.set_dir old)
    (fun () ->
      Alcotest.(check bool) "write without a dir returns None" true
        (Postmortem.write ~reason:"x" () = None))

(* --- allocation attribution & window totals ------------------------------ *)

let test_alloc_labels () =
  Alcotest.(check string) "default label" "other" (Alloc.current_label ());
  Alloc.with_label "query" (fun () ->
      Alcotest.(check string) "label applies" "query" (Alloc.current_label ());
      Alloc.with_label "batch" (fun () ->
          Alcotest.(check string) "labels nest" "batch" (Alloc.current_label ())));
  Alcotest.(check string) "label restored" "other" (Alloc.current_label ());
  (try Alloc.with_label "boom" (fun () -> failwith "escape") with Failure _ -> ());
  Alcotest.(check string) "label restored after an exception" "other" (Alloc.current_label ());
  Alcotest.(check bool) "rate 0 rejected" false (Alloc.start ~rate:0.0 ());
  Alcotest.(check bool) "rate > 1 rejected" false (Alloc.start ~rate:2.0 ());
  (* On runtimes without statmemprof (OCaml 5.0/5.1) start degrades to
     inert; either way stop must be safe to call. *)
  let started = Alloc.start ~rate:0.01 () in
  Alloc.stop ();
  Alcotest.(check bool) "inactive after stop" false (Alloc.active ());
  ignore (started : bool)

let test_window_totals () =
  with_telemetry true (fun () ->
      let w = Window.create ~seconds:2 "t.totals" in
      Alcotest.(check (pair int int)) "fresh totals" (0, 0) (Window.totals w);
      let now = 6_000_000.0 in
      Window.observe w ~now 1.0;
      Window.observe w ~error:true ~now 2.0;
      (* Lifetime totals must survive the ring sliding past the
         observations — that is what the sampler differentiates. *)
      Window.observe w ~now:(now +. 10.0) 3.0;
      Alcotest.(check (pair int int)) "totals outlive the ring" (3, 1) (Window.totals w);
      let s = Window.summary ~now:(now +. 10.0) w in
      Alcotest.(check int) "ring forgot the old requests" 1 s.Window.count;
      Window.reset w;
      Alcotest.(check (pair int int)) "reset zeroes totals" (0, 0) (Window.totals w))

(* --- histogram percentile bounds (property) ----------------------------- *)

(* The log-scale buckets promise ~9% relative resolution: the reported
   percentile is the upper bound of the bucket holding the exact
   rank-statistic, clamped to [min, max].  So for positive samples the
   estimate can never undershoot the exact percentile and can overshoot
   it by at most one bucket width (factor 2^(1/8)). *)
let qcheck_histogram_percentile_bound =
  let gen =
    QCheck.make
      ~print:(fun (samples, p) ->
        Printf.sprintf "p=%.3f samples=[%s]" p
          (String.concat "; " (List.map (Printf.sprintf "%.6g") samples)))
      QCheck.Gen.(
        pair
          (list_size (int_range 1 200) (map (fun f -> 1e-6 +. (f *. 1e6)) (float_bound_exclusive 1.0)))
          (float_range 0.01 0.99))
  in
  QCheck.Test.make ~count:200 ~name:"percentile within one log bucket of exact" gen
    (fun (samples, p) ->
      let h = Histogram.create ~always:true "t.hist.prop" in
      List.iter (Histogram.observe h) samples;
      let sorted = List.sort compare samples in
      let n = List.length sorted in
      let rank = Stdlib.max 1 (int_of_float (ceil (p *. float_of_int n))) in
      let exact = List.nth sorted (rank - 1) in
      let estimate = Histogram.percentile h p in
      estimate >= exact *. (1.0 -. 1e-6)
      && estimate <= exact *. ((2.0 ** 0.125) +. 1e-6))

(* --- Report.diff degenerate inputs -------------------------------------- *)

let test_report_diff_zero_iqr () =
  (* Identical samples have iqr = 0, so the Tukey fences collapse to a
     point: any threshold-crossing change is flagged, equal runs are
     not, and nothing divides by zero. *)
  let baseline = Report.create () and candidate = Report.create () in
  Report.add baseline ~id:"D.same" [ 10.0; 10.0; 10.0 ];
  Report.add candidate ~id:"D.same" [ 10.0; 10.0; 10.0 ];
  Report.add baseline ~id:"D.doubles" [ 10.0; 10.0; 10.0 ];
  Report.add candidate ~id:"D.doubles" [ 20.0; 20.0; 20.0 ];
  let comparisons = Report.diff ~baseline ~candidate () in
  let verdict id =
    (List.find (fun c -> c.Report.cid = id) comparisons).Report.verdict
  in
  Alcotest.(check bool) "identical zero-iqr runs are unchanged" true
    (verdict "D.same" = Report.Unchanged);
  Alcotest.(check bool) "doubling with zero iqr is a regression" true
    (verdict "D.doubles" = Report.Regression);
  Alcotest.(check bool) "has_regression sees it" true (Report.has_regression comparisons)

let test_report_diff_single_sample () =
  (* One sample per side: median = q1 = q3 = the sample; the rule still
     works and a big jump is not hidden by fake noise fences. *)
  let baseline = Report.create () and candidate = Report.create () in
  Report.add baseline ~id:"S.jump" [ 10.0 ];
  Report.add candidate ~id:"S.jump" [ 30.0 ];
  Report.add baseline ~id:"S.flat" [ 10.0 ];
  Report.add candidate ~id:"S.flat" [ 10.0 ];
  let comparisons = Report.diff ~baseline ~candidate () in
  let by_id id = List.find (fun c -> c.Report.cid = id) comparisons in
  Alcotest.(check bool) "single-sample jump is a regression" true
    ((by_id "S.jump").Report.verdict = Report.Regression);
  Alcotest.(check (float 1e-9)) "ratio is computed" 3.0 (by_id "S.jump").Report.ratio;
  Alcotest.(check bool) "single-sample identical is unchanged" true
    ((by_id "S.flat").Report.verdict = Report.Unchanged)

let test_report_diff_missing_side () =
  (* Records present on only one side are Added/Removed, never a
     regression, and their unpaired medians are nan where absent. *)
  let baseline = Report.create () and candidate = Report.create () in
  Report.add baseline ~id:"M.removed" [ 10.0; 11.0 ];
  Report.add candidate ~id:"M.added" [ 5.0; 6.0 ];
  let comparisons = Report.diff ~baseline ~candidate () in
  let by_id id = List.find (fun c -> c.Report.cid = id) comparisons in
  Alcotest.(check bool) "baseline-only is removed" true
    ((by_id "M.removed").Report.verdict = Report.Removed);
  Alcotest.(check bool) "candidate-only is added" true
    ((by_id "M.added").Report.verdict = Report.Added);
  Alcotest.(check bool) "removed has nan new median" true
    (Float.is_nan (by_id "M.removed").Report.new_median);
  Alcotest.(check bool) "added has nan old median" true
    (Float.is_nan (by_id "M.added").Report.old_median);
  Alcotest.(check bool) "added has nan ratio" true (Float.is_nan (by_id "M.added").Report.ratio);
  Alcotest.(check bool) "unpaired records never regress" false
    (Report.has_regression comparisons);
  (* Degenerate empty-vs-empty diff. *)
  Alcotest.(check int) "empty reports diff to nothing" 0
    (List.length (Report.diff ~baseline:(Report.create ()) ~candidate:(Report.create ()) ()))

(* --- explicit trace contexts and the trace store ------------------------ *)

let test_trace_mint_and_wire () =
  let ctx = Trace.make ~sampled:true () in
  Alcotest.(check bool) "minted trace id valid" true (Trace.valid_trace_id ctx.Trace.trace_id);
  Alcotest.(check bool) "minted span id valid" true (Trace.valid_span_id ctx.Trace.span_id);
  Alcotest.(check bool) "sampled flag kept" true ctx.Trace.sampled;
  let ctx2 = Trace.make () in
  Alcotest.(check bool) "two mints differ" false (ctx.Trace.trace_id = ctx2.Trace.trace_id);
  Alcotest.(check bool) "ambient has no identity" true (Trace.ambient.Trace.trace_id = "");
  (match Trace.of_wire (Trace.to_wire ctx) with
  | Some c ->
    Alcotest.(check string) "tid-sid form roundtrips" ctx.Trace.trace_id c.Trace.trace_id;
    (* The receiving hop is a new span: the trace id is adopted, the
       span id is minted fresh. *)
    Alcotest.(check bool) "adopted context minted its own span id" true
      (Trace.valid_span_id c.Trace.span_id && c.Trace.span_id <> ctx.Trace.span_id)
  | None -> Alcotest.fail "to_wire form rejected");
  (match Trace.of_wire ~sampled:true (Trace.to_traceparent ctx) with
  | Some c ->
    Alcotest.(check string) "traceparent form roundtrips" ctx.Trace.trace_id c.Trace.trace_id;
    Alcotest.(check bool) "sampled honoured on adoption" true c.Trace.sampled
  | None -> Alcotest.fail "traceparent form rejected");
  match Trace.of_wire ("  " ^ String.uppercase_ascii (Trace.to_wire ctx) ^ " ") with
  | Some c ->
    Alcotest.(check string) "case and whitespace normalised" ctx.Trace.trace_id c.Trace.trace_id
  | None -> Alcotest.fail "normalisable form rejected"

let test_trace_of_wire_rejects_malformed () =
  let rejected s =
    Alcotest.(check bool) (Printf.sprintf "%S rejected" s) true (Trace.of_wire s = None)
  in
  rejected "";
  rejected "not-a-trace";
  rejected "abcd-ef01";
  (* non-hex characters *)
  rejected (String.make 32 'g' ^ "-" ^ String.make 16 '0');
  (* all-zero trace id is the W3C invalid sentinel *)
  rejected (String.make 32 '0' ^ "-" ^ String.make 16 '1');
  (* truncated traceparent *)
  rejected "00-abc-def-01"

let test_trace_collect_sampled () =
  (* A sampled context records a span tree even with the global
     telemetry flag off; the ambient context without the flag records
     nothing. *)
  set_enabled false;
  let ctx = Trace.make ~sampled:true () in
  let v, span =
    Trace.collect ctx "root" (fun () -> Trace.with_span ctx "child" (fun () -> 41) + 1)
  in
  Alcotest.(check int) "body ran" 42 v;
  (match span with
  | Some s ->
    Alcotest.(check string) "root span name" "root" (Span.name s);
    Alcotest.(check (list string)) "child recorded" [ "root"; "child" ] (Span.preorder_names s)
  | None -> Alcotest.fail "sampled context recorded no span tree");
  let _, ambient_span = Trace.collect Trace.ambient "root" (fun () -> ()) in
  Alcotest.(check bool) "ambient context with flag off records nothing" true
    (ambient_span = None)

let test_span_self_time_and_critical_path () =
  let ctx = Trace.make ~sampled:true () in
  let (), span =
    Trace.collect ctx "root" (fun () ->
        Trace.with_span ctx "fast" (fun () -> ());
        Trace.with_span ctx "slow" (fun () ->
            Trace.with_span ctx "leaf" (fun () -> Unix.sleepf 0.002)))
  in
  let s = match span with Some s -> s | None -> Alcotest.fail "no span tree" in
  (* self time never exceeds the span's own duration, and the root's
     self time excludes its children. *)
  Alcotest.(check bool) "self <= duration" true (Span.self_ms s <= Span.duration_ms s);
  Alcotest.(check bool) "root self excludes children" true
    (Span.self_ms s < Span.duration_ms s);
  let path = List.map Span.name (Span.critical_path s) in
  Alcotest.(check (list string)) "critical path descends the longest child"
    [ "root"; "slow"; "leaf" ] path;
  let rendered = Format.asprintf "%a" Span.pp_annotated s in
  Alcotest.(check bool) "critical-path spans are starred" true
    (String.length rendered > 0 && String.contains rendered '*');
  (* to_json/of_json roundtrip: structure and durations survive. *)
  match Span.of_json (Span.to_json s) with
  | Some s' ->
    Alcotest.(check (list string)) "names roundtrip" (Span.preorder_names s)
      (Span.preorder_names s');
    Alcotest.(check (float 1e-9)) "duration roundtrips" (Span.duration_ms s)
      (Span.duration_ms s')
  | None -> Alcotest.fail "of_json rejected its own to_json"

let test_chrome_lanes_from_trace_ids () =
  let ctx = Trace.make ~sampled:true () in
  let (), span = Trace.collect ctx "root" (fun () -> ()) in
  let s = match span with Some s -> s | None -> Alcotest.fail "no span tree" in
  let pid_of text =
    match parse_json text with
    | Arr (Obj fields :: _) -> (
      match List.assoc_opt "pid" fields with
      | Some (Num pid) -> int_of_float pid
      | _ -> Alcotest.fail "event lacks a pid")
    | _ -> Alcotest.fail "trace is not a JSON array of objects"
  in
  Alcotest.(check int) "no trace id keeps the historical pid 1" 1
    (pid_of (Span.to_chrome_json s));
  let a = pid_of (Span.to_chrome_json ~trace_id:(String.make 32 'a') s) in
  let b = pid_of (Span.to_chrome_json ~trace_id:(String.make 32 'b') s) in
  Alcotest.(check bool) "distinct trace ids land in distinct lanes" false (a = b);
  Alcotest.(check bool) "lanes are positive" true (a > 0 && b > 0)

let test_tracestore_admission () =
  Tracestore.clear ();
  (* Use a dedicated op class so engine-driven suites cannot have
     warmed its window: an empty window has no p99, so nothing is
     tail-admitted and the head/error rules are observable alone. *)
  let op = "tstore-admission" in
  let offer ?(error = false) ?(tid = Trace.make ()) () =
    Tracestore.record ~trace_id:tid.Trace.trace_id ~span_id:tid.Trace.span_id ~op
      ~query:"q" ~duration_ms:1.0 ~error ()
  in
  Alcotest.(check bool) "identity-free requests never stored" false
    (Tracestore.record ~trace_id:"" ~span_id:"" ~op ~query:"q" ~duration_ms:1.0
       ~error:false ());
  Alcotest.(check bool) "first arrival head-sampled" true (offer ());
  for i = 2 to 10 do
    Alcotest.(check bool)
      (Printf.sprintf "arrival %d dropped" i)
      false (offer ())
  done;
  Alcotest.(check bool) "arrival 11 head-sampled" true (offer ());
  Alcotest.(check bool) "errors always kept" true (offer ~error:true ());
  Alcotest.(check int) "12 offers seen" 12 (Tracestore.seen ());
  let stored = Tracestore.recent () in
  Alcotest.(check int) "3 admitted" 3 (List.length stored);
  let kept_reasons = List.map (fun s -> s.Tracestore.skept) stored in
  Alcotest.(check bool) "error reason recorded" true (List.mem "error" kept_reasons);
  Alcotest.(check bool) "sampled reason recorded" true (List.mem "sampled" kept_reasons);
  (* Slow-path admission: warm the op window past the p99 minimum, then
     offer something slower than everything seen so far. *)
  let w = Window.get op in
  for _ = 1 to 30 do
    Window.observe w 1.0
  done;
  let slow_ctx = Trace.make () in
  Alcotest.(check bool) "p99-exceeding request tail-admitted" true
    (Tracestore.record ~trace_id:slow_ctx.Trace.trace_id ~span_id:slow_ctx.Trace.span_id
       ~op ~query:"q" ~duration_ms:500.0 ~error:false ());
  (match Tracestore.find slow_ctx.Trace.trace_id with
  | Some s -> Alcotest.(check string) "kept as slow" "slow" s.Tracestore.skept
  | None -> Alcotest.fail "slow trace not stored");
  Window.reset w;
  Tracestore.clear ()

let test_tracestore_find_and_roundtrip () =
  Tracestore.clear ();
  let ctx = Trace.make ~sampled:true () in
  let (), root = Trace.collect ctx "root" (fun () -> ()) in
  Alcotest.(check bool) "admitted" true
    (Tracestore.record ~trace_id:ctx.Trace.trace_id ~span_id:ctx.Trace.span_id ~op:"query"
       ~query:"fp" ~duration_ms:2.5 ~error:false ?root ());
  (match Tracestore.find (String.sub ctx.Trace.trace_id 0 8) with
  | Some s -> Alcotest.(check string) "prefix lookup" ctx.Trace.trace_id s.Tracestore.strace_id
  | None -> Alcotest.fail "prefix lookup failed");
  Alcotest.(check bool) "unknown id not found" true (Tracestore.find "ffffffff" = None);
  (* stored_json/of_json roundtrip, span tree included. *)
  (match Tracestore.find ctx.Trace.trace_id with
  | None -> Alcotest.fail "full-id lookup failed"
  | Some s -> (
    match Tracestore.stored_of_json (Tracestore.stored_json s) with
    | Some s' ->
      Alcotest.(check string) "trace id roundtrips" s.Tracestore.strace_id
        s'.Tracestore.strace_id;
      Alcotest.(check string) "kept reason roundtrips" s.Tracestore.skept
        s'.Tracestore.skept;
      Alcotest.(check bool) "span tree roundtrips" true (s'.Tracestore.sroot <> None);
      (* The explorer rendering shows the id and the span tree. *)
      let rendered = Format.asprintf "%a" Tracestore.pp_stored s' in
      Alcotest.(check bool) "rendering names the trace" true
        (let id = s.Tracestore.strace_id in
         let rec has i =
           i + String.length id <= String.length rendered
           && (String.sub rendered i (String.length id) = id || has (i + 1))
         in
         has 0)
    | None -> Alcotest.fail "stored_of_json rejected its own stored_json"));
  Tracestore.clear ()

let test_window_exemplars () =
  let w = Window.create "exemplar-test" in
  Window.observe w 1.0;
  Alcotest.(check int) "untraced observations leave no exemplar" 0
    (List.length (Window.exemplars w));
  Window.observe w ~trace:"cafe0123cafe0123cafe0123cafe0123" 1.0;
  Window.observe w ~trace:"beef4567beef4567beef4567beef4567" 100.0;
  let exs = Window.exemplars w in
  Alcotest.(check int) "one exemplar per touched bucket" 2 (List.length exs);
  let ids = List.map (fun e -> e.Window.ex_trace_id) exs in
  Alcotest.(check bool) "both trace ids advertised" true
    (List.mem "cafe0123cafe0123cafe0123cafe0123" ids
    && List.mem "beef4567beef4567beef4567beef4567" ids);
  List.iter
    (fun e ->
      Alcotest.(check bool) "bucket bound covers the observation" true
        (e.Window.ex_value_ms <= e.Window.ex_le))
    exs;
  (* A later traced observation in the same bucket replaces the
     exemplar; reset drops them all. *)
  Window.observe w ~trace:"feed8901feed8901feed8901feed8901" 1.0;
  let ids = List.map (fun e -> e.Window.ex_trace_id) (Window.exemplars w) in
  Alcotest.(check bool) "same-bucket exemplar replaced" true
    (List.mem "feed8901feed8901feed8901feed8901" ids
    && not (List.mem "cafe0123cafe0123cafe0123cafe0123" ids));
  (* The window document carries them. *)
  (match Window.to_json w with
  | Json.Obj fields -> (
    match List.assoc_opt "exemplars" fields with
    | Some (Json.Arr exs) -> Alcotest.(check int) "exemplars in to_json" 2 (List.length exs)
    | _ -> Alcotest.fail "to_json lacks an exemplars array")
  | _ -> Alcotest.fail "to_json is not an object");
  Window.reset w;
  Alcotest.(check int) "reset clears exemplars" 0 (List.length (Window.exemplars w))

let test_prometheus_exemplar_lines () =
  let w = Window.get "promex" in
  Window.observe w ~trace:"0123456789abcdef0123456789abcdef" 3.0;
  let text = Prometheus.render () in
  let has_line needle =
    let rec go i =
      i + String.length needle <= String.length text
      && (String.sub text i (String.length needle) = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "OpenMetrics-style exemplar annotation present" true
    (has_line "# EXEMPLAR expfinder_latency_ms{op=\"promex\"");
  Alcotest.(check bool) "exemplar names the trace id" true
    (has_line "trace_id=\"0123456789abcdef0123456789abcdef\"");
  Window.reset w

let test_qlog_schema_versions () =
  (* A v1 line (no trace_id member) parses with an empty trace id; a v2
     line carries its id; versions outside the supported band are
     rejected. *)
  let parse line =
    match Json.of_string line with
    | Ok j -> Qlog.event_of_json j
    | Error e -> Alcotest.fail ("test line is not JSON: " ^ e)
  in
  (match
     parse
       {|{"v":1,"seq":3,"kind":"query","query":"fp","strategy":"direct","duration_ms":0.5,"digest":"d"}|}
   with
  | Ok e ->
    Alcotest.(check string) "v1 trace id defaults empty" "" e.Qlog.trace_id;
    Alcotest.(check int) "v1 seq kept" 3 e.Qlog.seq
  | Error e -> Alcotest.fail ("v1 line rejected: " ^ e));
  (match
     parse
       {|{"v":2,"seq":4,"kind":"query","query":"fp","trace_id":"0123456789abcdef0123456789abcdef"}|}
   with
  | Ok e ->
    Alcotest.(check string) "v2 trace id parsed" "0123456789abcdef0123456789abcdef"
      e.Qlog.trace_id
  | Error e -> Alcotest.fail ("v2 line rejected: " ^ e));
  (match parse {|{"v":3,"seq":5,"kind":"query","query":"fp"}|} with
  | Ok _ -> Alcotest.fail "future schema version accepted"
  | Error _ -> ());
  match parse {|{"v":0,"seq":6,"kind":"query","query":"fp"}|} with
  | Ok _ -> Alcotest.fail "prehistoric schema version accepted"
  | Error _ -> ()

let test_engine_trace_threading () =
  (* The explicit context surfaces in every observability artifact the
     engine writes: the profile, the recorder event and the trace
     store (first arrival after a clear is always head-sampled). *)
  Tracestore.clear ();
  Recorder.clear ();
  with_telemetry true (fun () ->
      let engine = Engine.create (Collab.graph ()) in
      let ctx = Trace.make ~sampled:true () in
      let answer = Engine.evaluate ~trace:ctx engine (Collab.q1 ()) in
      (match answer.Engine.profile with
      | Some p ->
        Alcotest.(check string) "profile carries the trace id" ctx.Trace.trace_id
          p.Engine.trace_id
      | None -> Alcotest.fail "no profile");
      let recorded =
        List.exists
          (fun (e : Recorder.event) -> e.Recorder.trace_id = ctx.Trace.trace_id)
          (Recorder.recent ())
      in
      Alcotest.(check bool) "recorder event carries the trace id" true recorded;
      match Tracestore.find ctx.Trace.trace_id with
      | Some s ->
        Alcotest.(check string) "stored under op query" "query" s.Tracestore.sop;
        Alcotest.(check bool) "span tree stored" true (s.Tracestore.sroot <> None)
      | None -> Alcotest.fail "trace not stored");
  Tracestore.clear ();
  Recorder.clear ()

let () =
  Alcotest.run "telemetry"
    [
      ( "metrics",
        [
          Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "histogram edge cases" `Quick test_histogram_edge_cases;
          Alcotest.test_case "counter saturation" `Quick test_counter_saturation;
          Alcotest.test_case "counter gating" `Quick test_counter_gating;
          Alcotest.test_case "registry snapshot delta" `Quick test_registry_snapshot_delta;
          Alcotest.test_case "delta across reset_all" `Quick test_delta_across_reset_all;
        ] );
      ( "json",
        [
          Alcotest.test_case "emitter/parser roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "metrics registry as JSON" `Quick test_metrics_to_json;
        ] );
      ( "reports",
        [
          Alcotest.test_case "sample stats" `Quick test_report_stats;
          Alcotest.test_case "write/load roundtrip" `Quick test_report_write_load;
          Alcotest.test_case "other schema versions rejected" `Quick
            test_report_rejects_other_schema;
          Alcotest.test_case "regression diffing" `Quick test_report_diff;
          Alcotest.test_case "IQR-overlap noise rule" `Quick test_report_diff_iqr_noise_rule;
          Alcotest.test_case "zero-IQR runs" `Quick test_report_diff_zero_iqr;
          Alcotest.test_case "single-sample runs" `Quick test_report_diff_single_sample;
          Alcotest.test_case "records missing on one side" `Quick test_report_diff_missing_side;
        ] );
      ( "windows",
        [
          Alcotest.test_case "sliding expiry" `Quick test_window_sliding;
          Alcotest.test_case "percentiles and error rate" `Quick
            test_window_percentiles_and_errors;
          Alcotest.test_case "summary JSON roundtrip" `Quick test_window_summary_json_roundtrip;
          Alcotest.test_case "lifetime totals" `Quick test_window_totals;
        ] );
      ( "qlog",
        [
          Alcotest.test_case "emit/load roundtrip" `Quick test_qlog_emit_load_roundtrip;
          Alcotest.test_case "other schema versions rejected" `Quick
            test_qlog_event_json_rejects_other_schema;
          Alcotest.test_case "size-based rotation" `Quick test_qlog_rotation;
          Alcotest.test_case "unwritable sink disables, not raises" `Quick
            test_qlog_unwritable_sink_disables;
          Alcotest.test_case "replay across a rotation boundary" `Quick
            test_qlog_replay_across_rotation;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "ring math and wrap-around expiry" `Quick
            test_timeseries_ring_math;
          Alcotest.test_case "/timeseries.json document shape" `Quick
            test_timeseries_to_json_shape;
          Alcotest.test_case "capture load and report" `Quick
            test_timeseries_capture_load_report;
          Alcotest.test_case "capture rejects garbage lines" `Quick
            test_timeseries_load_rejects_garbage;
        ] );
      ( "slo",
        [
          Alcotest.test_case "availability fires and clears" `Quick test_slo_fire_and_clear;
          Alcotest.test_case "latency p99 objective" `Quick test_slo_latency_objective;
        ] );
      ( "prometheus",
        [
          Alcotest.test_case "collision disambiguation and HELP/TYPE" `Quick
            test_prometheus_collision_and_metadata;
          Alcotest.test_case "alert gauges" `Quick test_prometheus_alert_gauges;
        ] );
      ( "postmortem",
        [
          Alcotest.test_case "write/load/pp roundtrip" `Quick test_postmortem_roundtrip;
          Alcotest.test_case "inert without a directory" `Quick
            test_postmortem_without_dir_is_inert;
        ] );
      ( "alloc",
        [ Alcotest.test_case "label nesting and guards" `Quick test_alloc_labels ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest qcheck_histogram_percentile_bound ] );
      ( "recorder",
        [
          Alcotest.test_case "ring buffer and slow flags" `Quick test_recorder_ring;
          Alcotest.test_case "captures engine queries" `Quick
            test_recorder_captures_engine_queries;
        ] );
      ( "profiles",
        [
          Alcotest.test_case "stage tree on Fig. 1" `Quick test_profile_stage_tree;
          Alcotest.test_case "disabled produces no profile" `Quick test_disabled_no_profile;
          Alcotest.test_case "answers invariant under the flag" `Quick
            test_same_answers_when_disabled;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "chrome trace roundtrip" `Quick test_chrome_trace_roundtrip;
          Alcotest.test_case "context mint and wire forms" `Quick test_trace_mint_and_wire;
          Alcotest.test_case "malformed wire forms rejected" `Quick
            test_trace_of_wire_rejects_malformed;
          Alcotest.test_case "sampled context records without the flag" `Quick
            test_trace_collect_sampled;
          Alcotest.test_case "self time and critical path" `Quick
            test_span_self_time_and_critical_path;
          Alcotest.test_case "chrome lanes from trace ids" `Quick
            test_chrome_lanes_from_trace_ids;
          Alcotest.test_case "engine threads the context" `Quick test_engine_trace_threading;
        ] );
      ( "tracestore",
        [
          Alcotest.test_case "head/tail admission" `Quick test_tracestore_admission;
          Alcotest.test_case "prefix find and JSON roundtrip" `Quick
            test_tracestore_find_and_roundtrip;
        ] );
      ( "exemplars",
        [
          Alcotest.test_case "per-bucket trace ids" `Quick test_window_exemplars;
          Alcotest.test_case "prometheus EXEMPLAR lines" `Quick
            test_prometheus_exemplar_lines;
        ] );
      ( "qlog-schema",
        [ Alcotest.test_case "v1/v2 accepted, others rejected" `Quick test_qlog_schema_versions ] );
    ]
