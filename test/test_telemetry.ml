(* Telemetry subsystem tests: histogram percentiles, counter
   saturation and gating, per-query profiles on the paper's Fig. 1
   example, answer invariance under the runtime flag, and a syntactic
   round-trip of the Chrome trace-event export. *)

open Expfinder_pattern
open Expfinder_core
open Expfinder_engine
open Expfinder_telemetry
module Collab = Expfinder_workload.Collab

(* Every test leaves the global flag off so suites in this binary do
   not leak telemetry state into each other. *)
let with_telemetry on f =
  set_enabled on;
  Fun.protect ~finally:(fun () -> set_enabled false) f

(* --- metrics ------------------------------------------------------------ *)

let test_histogram_percentiles () =
  let h = Histogram.create ~always:true "t.hist" in
  Alcotest.(check bool) "empty percentile is nan" true (Float.is_nan (Histogram.percentile h 0.5));
  for i = 1 to 100 do
    Histogram.observe h (float_of_int i)
  done;
  Alcotest.(check int) "count" 100 (Histogram.count h);
  Alcotest.(check (float 1e-6)) "sum" 5050.0 (Histogram.sum h);
  Alcotest.(check (float 1e-6)) "min" 1.0 (Histogram.min_value h);
  Alcotest.(check (float 1e-6)) "max" 100.0 (Histogram.max_value h);
  (* Buckets are geometric with ~9% relative resolution: the reported
     percentile is a bucket upper bound near the exact sample. *)
  let p50 = Histogram.percentile h 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "p50 = %.2f within 9%% of 50" p50)
    true
    (p50 >= 45.0 && p50 <= 56.0);
  let p99 = Histogram.percentile h 0.99 in
  Alcotest.(check bool)
    (Printf.sprintf "p99 = %.2f within [90, 100]" p99)
    true
    (p99 >= 90.0 && p99 <= 100.0);
  (* Never outside [min, max]; the top end clamps to the exact max. *)
  let p0 = Histogram.percentile h 0.0 in
  Alcotest.(check bool)
    (Printf.sprintf "p0 = %.4f within a bucket of min" p0)
    true
    (p0 >= 1.0 && p0 <= 1.1);
  Alcotest.(check (float 1e-6)) "p100 clamps to max" 100.0 (Histogram.percentile h 1.0);
  Histogram.reset h;
  Alcotest.(check int) "reset empties" 0 (Histogram.count h)

let test_histogram_edge_cases () =
  let h = Histogram.create ~always:true "t.hist.edge" in
  (* Empty: every percentile is nan, as are min and max. *)
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "empty p%.0f is nan" (100.0 *. p))
        true
        (Float.is_nan (Histogram.percentile h p)))
    [ 0.0; 0.5; 1.0 ];
  (* A single sample: clamping pins every percentile to that sample. *)
  Histogram.observe h 42.0;
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "single-sample p%.0f" (100.0 *. p))
        42.0 (Histogram.percentile h p))
    [ 0.0; 0.5; 1.0 ];
  Alcotest.(check int) "single-sample count" 1 (Histogram.count h);
  Histogram.reset h

let test_delta_across_reset_all () =
  let c = Metrics.counter ~always:true "t.reg.reset_delta" in
  Counter.reset c;
  Counter.add c 5;
  let before = Metrics.counters_snapshot () in
  Metrics.reset_all ();
  let after = Metrics.counters_snapshot () in
  (* Deltas spanning a reset go negative: pinned-down, documented
     behaviour the report layer must expect (not silently clamped). *)
  Alcotest.(check bool)
    "delta across reset_all is negative" true
    (List.assoc_opt "t.reg.reset_delta" (Metrics.delta ~before ~after) = Some (-5))

let test_counter_saturation () =
  let c = Counter.create ~always:true "t.sat" in
  Counter.add c (max_int - 2);
  Counter.add c 5;
  Alcotest.(check int) "add saturates at max_int" max_int (Counter.value c);
  Counter.incr c;
  Alcotest.(check int) "incr stays saturated" max_int (Counter.value c);
  Counter.reset c;
  Alcotest.(check int) "reset" 0 (Counter.value c)

let test_counter_gating () =
  let gated = Counter.create "t.gated" in
  let always = Counter.create ~always:true "t.always" in
  Counter.incr gated;
  Counter.incr always;
  Alcotest.(check int) "gated counter is a no-op when disabled" 0 (Counter.value gated);
  Alcotest.(check int) "always counter records when disabled" 1 (Counter.value always);
  with_telemetry true (fun () -> Counter.incr gated);
  Alcotest.(check int) "gated counter records when enabled" 1 (Counter.value gated)

(* --- per-query profiles ------------------------------------------------- *)

let test_profile_stage_tree () =
  with_telemetry true (fun () ->
      let engine = Engine.create (Collab.graph ()) in
      let q = Collab.query () in
      let experts = Engine.top_k engine q ~k:2 in
      Alcotest.(check int) "top-2 found" 2 (List.length experts);
      match Engine.last_profile engine with
      | None -> Alcotest.fail "enabled telemetry must produce a profile"
      | Some p ->
        Alcotest.(check string) "profile query" (Pattern.fingerprint q) p.Engine.query;
        let names = Span.preorder_names p.Engine.span in
        List.iter
          (fun stage ->
            Alcotest.(check bool)
              (Printf.sprintf "stage tree contains %S" stage)
              true (List.mem stage names))
          [ "topk"; "evaluate"; "plan"; "candidates"; "refine"; "rank" ];
        (* The refinement stage is nested under the evaluation, not a
           sibling of the root. *)
        (match Span.find p.Engine.span "evaluate" with
        | None -> Alcotest.fail "no evaluate span"
        | Some ev ->
          Alcotest.(check bool)
            "refine nested under evaluate" true
            (Span.find ev "refine" <> None));
        Alcotest.(check bool)
          "root duration is measurable" true
          (Span.duration_ms p.Engine.span >= 0.0);
        Alcotest.(check bool)
          "some counter moved during the query" true
          (List.exists (fun (_, v) -> v > 0) p.Engine.counters))

let test_disabled_no_profile () =
  let engine = Engine.create (Collab.graph ()) in
  let answer = Engine.evaluate engine (Collab.query ()) in
  Alcotest.(check bool) "no profile when disabled" true (answer.Engine.profile = None);
  Alcotest.(check bool) "no last_profile when disabled" true (Engine.last_profile engine = None)

let test_same_answers_when_disabled () =
  let run () =
    let engine = Engine.create (Collab.graph ()) in
    let q = Collab.query () in
    let answer = Engine.evaluate engine q in
    let experts =
      List.map (fun e -> (e.Engine.node, e.Engine.name, e.Engine.rank)) (Engine.top_k engine q ~k:3)
    in
    (List.sort compare (Match_relation.pairs answer.Engine.relation), answer.Engine.provenance, experts)
  in
  let off = run () in
  let on = with_telemetry true run in
  Alcotest.(check bool) "telemetry does not change answers" true (off = on)

(* --- Chrome trace export ------------------------------------------------ *)

(* A small JSON reader, enough to round-trip the exporter's output
   (the test suite has no JSON library to lean on). *)
type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      incr pos;
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> incr pos
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub text !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> incr pos
      | Some '\\' ->
        incr pos;
        (match peek () with
        | Some c ->
          incr pos;
          Buffer.add_char buf c
        | None -> fail "bad escape");
        loop ()
      | Some c ->
        incr pos;
        Buffer.add_char buf c;
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numeric = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when numeric c -> true | _ -> false) do
      incr pos
    done;
    match float_of_string_opt (String.sub text start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            members ((key, v) :: acc)
          | Some '}' ->
            incr pos;
            Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected , or }"
        in
        members []
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            elements (v :: acc)
          | Some ']' ->
            incr pos;
            Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ]"
        in
        elements []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "empty input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let test_chrome_trace_roundtrip () =
  with_telemetry true (fun () ->
      let (), span =
        collect "root" ~attrs:[ ("who", "test") ] (fun () ->
            with_span "child-a" (fun () -> annotate_int "items" 3);
            with_span "child-b" (fun () ->
                with_span "grandchild" (fun () -> ())))
      in
      let span = match span with Some s -> s | None -> Alcotest.fail "no root span" in
      let text = Span.to_chrome_json span in
      let events =
        match parse_json text with
        | Arr events -> events
        | _ -> Alcotest.fail "trace is not a JSON array"
        | exception Bad_json msg -> Alcotest.fail ("trace is not valid JSON: " ^ msg)
      in
      Alcotest.(check int) "one event per span" 4 (List.length events);
      let field name = function
        | Obj fields -> List.assoc_opt name fields
        | _ -> Alcotest.fail "event is not an object"
      in
      let names =
        List.map
          (fun e ->
            (match field "ph" e with
            | Some (Str "X") -> ()
            | _ -> Alcotest.fail "event is not a complete event");
            (match (field "ts" e, field "dur" e) with
            | Some (Num ts), Some (Num dur) ->
              Alcotest.(check bool) "timestamps are sane" true (ts >= 0.0 && dur >= 0.0)
            | _ -> Alcotest.fail "event lacks ts/dur");
            match field "name" e with
            | Some (Str name) -> name
            | _ -> Alcotest.fail "event lacks a name")
          events
      in
      Alcotest.(check (list string))
        "event names preserve the tree order"
        [ "root"; "child-a"; "child-b"; "grandchild" ]
        names;
      (* The root's annotations survive the export. *)
      match List.hd events with
      | Obj _ as root -> (
        match field "args" root with
        | Some (Obj args) ->
          Alcotest.(check bool) "root args kept" true (List.assoc_opt "who" args = Some (Str "test"))
        | _ -> Alcotest.fail "root lacks args")
      | _ -> ())

(* --- Json emitter/parser ------------------------------------------------ *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.Str "a \"quoted\"\nline\twith \\ specials");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("nothing", Json.Null);
        ("arr", Json.Arr [ Json.Int 1; Json.Float 2.25; Json.Str "x" ]);
        ("nested", Json.Obj [ ("empty_arr", Json.Arr []); ("empty_obj", Json.Obj []) ]);
      ]
  in
  (match Json.of_string (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "compact round-trip" true (v = v')
  | Error e -> Alcotest.fail ("compact parse failed: " ^ e));
  (match Json.of_string (Json.to_string ~pretty:true v) with
  | Ok v' -> Alcotest.(check bool) "pretty round-trip" true (v = v')
  | Error e -> Alcotest.fail ("pretty parse failed: " ^ e));
  (* Non-finite floats are emitted as null, never as bare words. *)
  Alcotest.(check string) "nan -> null" "null" (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string)
    "inf -> null" "null"
    (Json.to_string (Json.Float Float.infinity));
  (* Parse errors, not exceptions. *)
  Alcotest.(check bool) "trailing garbage rejected" true (Json.of_string "1 2" |> Result.is_error);
  Alcotest.(check bool) "unterminated string rejected" true (Json.of_string "\"x" |> Result.is_error);
  (* Accessors. *)
  let m = Json.member "i" v in
  Alcotest.(check (option int)) "member/int_opt" (Some (-42)) (Option.bind m Json.int_opt);
  Alcotest.(check (option (float 1e-9)))
    "float_opt accepts Int" (Some (-42.0))
    (Option.bind m Json.float_opt)

let test_metrics_to_json () =
  let c = Metrics.counter ~always:true "t.json.counter" in
  Counter.reset c;
  Counter.add c 3;
  let j = Metrics.to_json () in
  match Json.member "t.json.counter" j with
  | Some entry ->
    Alcotest.(check (option string))
      "kind" (Some "counter")
      (Option.bind (Json.member "kind" entry) Json.str_opt);
    Alcotest.(check (option int))
      "value" (Some 3)
      (Option.bind (Json.member "value" entry) Json.int_opt)
  | None -> Alcotest.fail "registered counter missing from Metrics.to_json"

(* --- structured reports ------------------------------------------------- *)

let test_report_stats () =
  let s = Report.stats_of_samples [ 4.0; 1.0; 3.0; 2.0 ] in
  Alcotest.(check (float 1e-9)) "even-count median is the middle-pair mean" 2.5 s.Report.median;
  Alcotest.(check (float 1e-9)) "q1" 1.75 s.Report.q1;
  Alcotest.(check (float 1e-9)) "q3" 3.25 s.Report.q3;
  Alcotest.(check (float 1e-9)) "iqr" 1.5 s.Report.iqr;
  let one = Report.stats_of_samples [ 7.0 ] in
  Alcotest.(check (float 1e-9)) "singleton median" 7.0 one.Report.median;
  Alcotest.(check (float 1e-9)) "singleton iqr" 0.0 one.Report.iqr;
  Alcotest.(check bool)
    "empty stats are nan" true
    (Float.is_nan (Report.stats_of_samples []).Report.median)

let with_tmpfile f =
  let path = Filename.temp_file "expfinder-report" ".json" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let make_report samples_by_id =
  let r = Report.create ~mode:"test" () in
  List.iter
    (fun (id, samples) ->
      Report.add r ~id ~params:[ ("n", Json.Int 2000) ] samples)
    samples_by_id;
  r

let test_report_write_load () =
  with_tmpfile (fun path ->
      let r = make_report [ ("EXP-Q1.bsim.n=2000", [ 1.0; 2.0; 3.0 ]); ("EXP-K1", [ 0.5 ]) ] in
      Report.write r path;
      match Report.load path with
      | Error e -> Alcotest.fail ("load failed: " ^ e)
      | Ok loaded -> (
        match Report.records loaded with
        | [ a; b ] ->
          Alcotest.(check string) "id" "EXP-Q1.bsim.n=2000" a.Report.id;
          Alcotest.(check string) "experiment derived from id" "EXP-Q1" a.Report.experiment;
          Alcotest.(check (list (float 1e-9)))
            "raw samples survive" [ 1.0; 2.0; 3.0 ]
            a.Report.stats.Report.samples;
          Alcotest.(check (float 1e-9)) "median recomputed" 2.0 a.Report.stats.Report.median;
          Alcotest.(check string) "second id" "EXP-K1" b.Report.id
        | records -> Alcotest.fail (Printf.sprintf "expected 2 records, got %d" (List.length records))))

let test_report_rejects_other_schema () =
  with_tmpfile (fun path ->
      let oc = open_out path in
      output_string oc "{\"schema_version\": 999, \"records\": []}";
      close_out oc;
      Alcotest.(check bool) "future schema rejected" true (Report.load path |> Result.is_error))

let test_report_diff () =
  let baseline =
    make_report [ ("a", [ 10.0; 10.1; 10.2 ]); ("b", [ 5.0; 5.1; 5.2 ]); ("gone", [ 1.0 ]) ]
  in
  (* a regressed 2.5x with a disjoint spread; b is within noise. *)
  let candidate =
    make_report [ ("a", [ 25.0; 25.1; 25.2 ]); ("b", [ 5.1; 5.2; 5.3 ]); ("new", [ 1.0 ]) ]
  in
  let comparisons = Report.diff ~baseline ~candidate () in
  let verdict id =
    (List.find (fun c -> c.Report.cid = id) comparisons).Report.verdict
  in
  Alcotest.(check bool) "2.5x slowdown is a regression" true (verdict "a" = Report.Regression);
  Alcotest.(check bool) "noise-level change is unchanged" true (verdict "b" = Report.Unchanged);
  Alcotest.(check bool) "removed record tracked" true (verdict "gone" = Report.Removed);
  Alcotest.(check bool) "added record tracked" true (verdict "new" = Report.Added);
  Alcotest.(check bool) "has_regression" true (Report.has_regression comparisons);
  (* A report diffed against itself is entirely quiet. *)
  let self = Report.diff ~baseline ~candidate:baseline () in
  Alcotest.(check bool)
    "self-diff has no regressions or improvements" true
    (List.for_all (fun c -> c.Report.verdict = Report.Unchanged) self)

let test_report_diff_iqr_noise_rule () =
  (* Median grew >50% but the spreads overlap: noisy, not a regression. *)
  let baseline = make_report [ ("x", [ 1.0; 2.0; 9.0 ]) ] in
  let candidate = make_report [ ("x", [ 1.5; 3.5; 8.0 ]) ] in
  match Report.diff ~baseline ~candidate () with
  | [ c ] ->
    Alcotest.(check bool)
      "overlapping IQRs suppress the verdict" true
      (c.Report.verdict = Report.Unchanged)
  | _ -> Alcotest.fail "expected one comparison"

(* --- flight recorder ---------------------------------------------------- *)

let test_recorder_ring () =
  Recorder.clear ();
  Recorder.set_slow_threshold_ms (Some 1.0);
  Fun.protect
    ~finally:(fun () ->
      Recorder.set_slow_threshold_ms None;
      Recorder.clear ())
    (fun () ->
      for i = 1 to Recorder.capacity () + 5 do
        Recorder.record
          ~query:(Printf.sprintf "q%d" i)
          ~strategy:"direct/simulation"
          ~duration_ms:(if i mod 10 = 0 then 2.0 else 0.1)
          ~counters:[ ("engine.queries", 1) ]
      done;
      let events = Recorder.recent () in
      Alcotest.(check int) "ring keeps the last capacity events" (Recorder.capacity ())
        (List.length events);
      (match (events, List.rev events) with
      | oldest :: _, newest :: _ ->
        Alcotest.(check string) "oldest survivor" "q6" oldest.Recorder.query;
        Alcotest.(check string) "newest event" (Printf.sprintf "q%d" (Recorder.capacity () + 5))
          newest.Recorder.query;
        Alcotest.(check bool) "sequence numbers increase" true
          (newest.Recorder.seq > oldest.Recorder.seq)
      | _ -> Alcotest.fail "empty recorder");
      Alcotest.(check bool)
        "slow events flagged by the threshold" true
        (Recorder.slow_events () <> []
        && List.for_all (fun e -> e.Recorder.duration_ms >= 1.0) (Recorder.slow_events ()));
      (* The dump is valid JSON with the counter deltas attached. *)
      (match Json.of_string (Json.to_string (Recorder.to_json ())) with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("recorder JSON invalid: " ^ e));
      Recorder.clear ();
      Alcotest.(check (list reject)) "clear empties" [] (Recorder.recent ()))

let test_recorder_captures_engine_queries () =
  Recorder.clear ();
  Fun.protect
    ~finally:(fun () -> Recorder.clear ())
    (fun () ->
      let engine = Engine.create (Collab.graph ()) in
      let q = Collab.query () in
      (* Recording itself is always on; the registered counters only move
         with telemetry enabled, so enable it to see the deltas. *)
      with_telemetry true (fun () ->
          let (_ : Engine.answer) = Engine.evaluate engine q in
          let (_ : Engine.answer) = Engine.evaluate engine q in
          ());
      match Recorder.recent () with
      | [ first; second ] ->
        Alcotest.(check string)
          "query digest recorded" (Pattern.fingerprint q) first.Recorder.query;
        Alcotest.(check bool)
          "cold query went direct" true
          (String.length first.Recorder.strategy >= 7
          && String.sub first.Recorder.strategy 0 7 = "direct/");
        Alcotest.(check string) "warm query hit the cache" "cache" second.Recorder.strategy;
        Alcotest.(check bool)
          "per-query counter deltas captured" true
          (List.assoc_opt "engine.queries" first.Recorder.counters = Some 1
          && List.mem_assoc "engine.answers.direct" first.Recorder.counters)
      | events ->
        Alcotest.fail
          (Printf.sprintf "expected 2 recorded events, got %d" (List.length events)))

(* --- registry ----------------------------------------------------------- *)

let test_registry_snapshot_delta () =
  let c = Metrics.counter ~always:true "t.reg.counter" in
  Counter.reset c;
  let before = Metrics.counters_snapshot () in
  Counter.add c 7;
  let after = Metrics.counters_snapshot () in
  let delta = Metrics.delta ~before ~after in
  Alcotest.(check bool)
    "delta isolates the moved counter" true
    (List.assoc_opt "t.reg.counter" delta = Some 7);
  Alcotest.(check bool)
    "unmoved counters are dropped from the delta" true
    (List.for_all (fun (_, v) -> v <> 0) delta)

(* --- sliding windows ---------------------------------------------------- *)

let test_window_sliding () =
  let w = Window.create ~seconds:10 "t.win.slide" in
  let t0 = 1000.0 in
  (* One request per second for 10 seconds fills the whole ring. *)
  for i = 0 to 9 do
    Window.observe w ~now:(t0 +. float_of_int i) 10.0
  done;
  let s = Window.summary ~now:(t0 +. 9.0) w in
  Alcotest.(check int) "full window count" 10 s.Window.count;
  Alcotest.(check (float 1e-9)) "qps = count / window" 1.0 s.Window.qps;
  Alcotest.(check int) "no errors" 0 s.Window.errors;
  (* Six seconds later only the four youngest buckets are still inside
     the window; the rest are stale and skipped on read. *)
  let s = Window.summary ~now:(t0 +. 15.0) w in
  Alcotest.(check int) "stale buckets fall out" 4 s.Window.count;
  (* Far in the future the window is empty again — without any write. *)
  let s = Window.summary ~now:(t0 +. 100.0) w in
  Alcotest.(check int) "fully drained" 0 s.Window.count;
  Alcotest.(check (float 1e-9)) "empty qps" 0.0 s.Window.qps;
  Alcotest.(check bool) "empty p95 is nan" true (Float.is_nan s.Window.p95);
  (* Writing a slot in a later second reclaims it instead of merging. *)
  Window.observe w ~now:(t0 +. 20.0) 5.0;
  let s = Window.summary ~now:(t0 +. 20.0) w in
  Alcotest.(check int) "reclaimed slot holds one sample" 1 s.Window.count;
  Alcotest.(check (float 1e-9)) "max of the survivor" 5.0 s.Window.max_ms

let test_window_percentiles_and_errors () =
  let w = Window.create ~seconds:60 "t.win.pct" in
  let now = 5000.0 in
  for i = 1 to 100 do
    Window.observe w ~now ~error:(i mod 10 = 0) (float_of_int i)
  done;
  let s = Window.summary ~now w in
  Alcotest.(check int) "count" 100 s.Window.count;
  Alcotest.(check int) "errors" 10 s.Window.errors;
  Alcotest.(check (float 1e-9)) "error rate" 0.1 s.Window.error_rate;
  Alcotest.(check bool)
    (Printf.sprintf "p50 = %.2f within 9%% of 50" s.Window.p50)
    true
    (s.Window.p50 >= 45.0 && s.Window.p50 <= 56.0);
  Alcotest.(check bool)
    (Printf.sprintf "p99 = %.2f within [90, 100]" s.Window.p99)
    true
    (s.Window.p99 >= 90.0 && s.Window.p99 <= 100.0);
  Alcotest.(check (float 1e-9)) "max clamps exactly" 100.0 s.Window.max_ms;
  Alcotest.(check (float 1e-6)) "mean" 50.5 s.Window.mean_ms

let test_window_summary_json_roundtrip () =
  let w = Window.create ~seconds:60 "t.win.json" in
  let now = 6000.0 in
  Window.observe w ~now 1.5;
  Window.observe w ~now ~error:true 3.0;
  let s = Window.summary ~now w in
  (match Window.summary_of_json (Window.summary_json s) with
  | None -> Alcotest.fail "summary_json did not parse back"
  | Some s' ->
    Alcotest.(check int) "count survives" s.Window.count s'.Window.count;
    Alcotest.(check int) "errors survive" s.Window.errors s'.Window.errors;
    Alcotest.(check (float 1e-9)) "qps survives" s.Window.qps s'.Window.qps;
    Alcotest.(check (float 1e-9)) "p95 survives" s.Window.p95 s'.Window.p95);
  (* An empty window's nan percentiles serialize as null and come back
     as nan, not as a parse failure. *)
  let empty = Window.summary ~now (Window.create ~seconds:60 "t.win.empty") in
  match Window.summary_of_json (Window.summary_json empty) with
  | None -> Alcotest.fail "empty summary did not parse back"
  | Some e -> Alcotest.(check bool) "nan p50 roundtrips" true (Float.is_nan e.Window.p50)

(* --- query log ---------------------------------------------------------- *)

let with_qlog_sink path f =
  Qlog.set_sink (Some path);
  Fun.protect
    ~finally:(fun () ->
      Qlog.set_sink None;
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists (path ^ ".1") then Sys.remove (path ^ ".1"))
    f

let test_qlog_emit_load_roundtrip () =
  let path = Filename.temp_file "expfinder-qlog" ".jsonl" in
  with_qlog_sink path (fun () ->
      Alcotest.(check bool) "sink configured" true (Qlog.enabled ());
      Qlog.emit ~kind:Qlog.Query ~graph_id:7 ~epoch:3 ~query:"fp1" ~strategy:"direct"
        ~duration_ms:1.25
        ~counters:[ ("bsim.sweeps", 2) ]
        ~pairs:9 ~digest:"abc123" ~payload:(Json.Str "pattern-text") ();
      Qlog.emit ~kind:Qlog.Update ~graph_id:7 ~epoch:4 ~query:"update" ~strategy:"updates"
        ~duration_ms:0.5 ~counters:[] ~pairs:2 ~digest:"" ~error:"boom" ();
      Qlog.close ();
      match Qlog.load path with
      | Error e -> Alcotest.fail e
      | Ok [ e1; e2 ] ->
        Alcotest.(check bool) "kinds survive" true
          (e1.Qlog.kind = Qlog.Query && e2.Qlog.kind = Qlog.Update);
        Alcotest.(check int) "graph id survives" 7 e1.Qlog.graph_id;
        Alcotest.(check int) "epoch survives" 4 e2.Qlog.epoch;
        Alcotest.(check string) "digest survives" "abc123" e1.Qlog.digest;
        Alcotest.(check bool) "seq is monotonic" true (e2.Qlog.seq > e1.Qlog.seq);
        Alcotest.(check bool) "counters survive" true
          (e1.Qlog.counters = [ ("bsim.sweeps", 2) ]);
        Alcotest.(check bool) "payload survives" true
          (e1.Qlog.payload = Some (Json.Str "pattern-text"));
        Alcotest.(check bool) "error survives" true (e2.Qlog.error = Some "boom");
        Alcotest.(check bool) "no payload stays absent" true (e2.Qlog.payload = None)
      | Ok events -> Alcotest.failf "expected 2 events, loaded %d" (List.length events))

let test_qlog_event_json_rejects_other_schema () =
  let bad =
    Json.Obj
      [ ("v", Json.Int 999); ("seq", Json.Int 0); ("kind", Json.Str "query"); ("query", Json.Str "x") ]
  in
  match Qlog.event_of_json bad with
  | Ok _ -> Alcotest.fail "schema version 999 should be rejected"
  | Error e -> Alcotest.(check bool) "error names the version" true (String.length e > 0)

let test_qlog_rotation () =
  let path = Filename.temp_file "expfinder-qlog-rot" ".jsonl" in
  let old_max = Qlog.max_bytes () in
  Qlog.set_max_bytes 4096;
  Fun.protect
    ~finally:(fun () -> Qlog.set_max_bytes old_max)
    (fun () ->
      with_qlog_sink path (fun () ->
          (* Each event is ~150 bytes; 100 of them must cross the 4 KiB
             ceiling and rotate at least once. *)
          for i = 0 to 99 do
            Qlog.emit ~kind:Qlog.Query ~graph_id:1 ~epoch:i ~query:"fp-rotation"
              ~strategy:"direct" ~duration_ms:0.1 ~counters:[] ~pairs:1 ~digest:"d" ()
          done;
          Qlog.close ();
          Alcotest.(check bool) "archived generation exists" true
            (Sys.file_exists (path ^ ".1"));
          let size p = (Unix.stat p).Unix.st_size in
          Alcotest.(check bool) "live file stayed under the ceiling" true (size path <= 4096);
          Alcotest.(check bool) "archive stayed under the ceiling" true
            (size (path ^ ".1") <= 4096);
          (* Both generations still parse, and together they kept the
             newest events. *)
          match (Qlog.load path, Qlog.load (path ^ ".1")) with
          | Ok live, Ok archived ->
            Alcotest.(check bool) "both generations parse" true
              (live <> [] && archived <> []);
            let last = List.nth live (List.length live - 1) in
            Alcotest.(check int) "newest event survived" 99 last.Qlog.epoch
          | Error e, _ | _, Error e -> Alcotest.fail e))

(* Sink I/O failures disable the log instead of raising into the
   serving path: emitting to a path whose directory does not exist must
   return normally and leave the sink off. *)
let test_qlog_unwritable_sink_disables () =
  Qlog.set_sink (Some "/nonexistent-expfinder-dir/qlog.jsonl");
  Fun.protect
    ~finally:(fun () -> Qlog.set_sink None)
    (fun () ->
      Alcotest.(check bool) "sink configured" true (Qlog.enabled ());
      Qlog.emit ~kind:Qlog.Query ~graph_id:1 ~epoch:0 ~query:"fp" ~strategy:"direct"
        ~duration_ms:0.1 ~counters:[] ~pairs:0 ~digest:"d" ();
      Alcotest.(check bool) "sink disabled after the failure" false (Qlog.enabled ());
      (* Further emits are no-ops, not repeated failures. *)
      Qlog.emit ~kind:Qlog.Query ~graph_id:1 ~epoch:1 ~query:"fp" ~strategy:"direct"
        ~duration_ms:0.1 ~counters:[] ~pairs:0 ~digest:"d" ())

(* --- histogram percentile bounds (property) ----------------------------- *)

(* The log-scale buckets promise ~9% relative resolution: the reported
   percentile is the upper bound of the bucket holding the exact
   rank-statistic, clamped to [min, max].  So for positive samples the
   estimate can never undershoot the exact percentile and can overshoot
   it by at most one bucket width (factor 2^(1/8)). *)
let qcheck_histogram_percentile_bound =
  let gen =
    QCheck.make
      ~print:(fun (samples, p) ->
        Printf.sprintf "p=%.3f samples=[%s]" p
          (String.concat "; " (List.map (Printf.sprintf "%.6g") samples)))
      QCheck.Gen.(
        pair
          (list_size (int_range 1 200) (map (fun f -> 1e-6 +. (f *. 1e6)) (float_bound_exclusive 1.0)))
          (float_range 0.01 0.99))
  in
  QCheck.Test.make ~count:200 ~name:"percentile within one log bucket of exact" gen
    (fun (samples, p) ->
      let h = Histogram.create ~always:true "t.hist.prop" in
      List.iter (Histogram.observe h) samples;
      let sorted = List.sort compare samples in
      let n = List.length sorted in
      let rank = Stdlib.max 1 (int_of_float (ceil (p *. float_of_int n))) in
      let exact = List.nth sorted (rank - 1) in
      let estimate = Histogram.percentile h p in
      estimate >= exact *. (1.0 -. 1e-6)
      && estimate <= exact *. ((2.0 ** 0.125) +. 1e-6))

(* --- Report.diff degenerate inputs -------------------------------------- *)

let test_report_diff_zero_iqr () =
  (* Identical samples have iqr = 0, so the Tukey fences collapse to a
     point: any threshold-crossing change is flagged, equal runs are
     not, and nothing divides by zero. *)
  let baseline = Report.create () and candidate = Report.create () in
  Report.add baseline ~id:"D.same" [ 10.0; 10.0; 10.0 ];
  Report.add candidate ~id:"D.same" [ 10.0; 10.0; 10.0 ];
  Report.add baseline ~id:"D.doubles" [ 10.0; 10.0; 10.0 ];
  Report.add candidate ~id:"D.doubles" [ 20.0; 20.0; 20.0 ];
  let comparisons = Report.diff ~baseline ~candidate () in
  let verdict id =
    (List.find (fun c -> c.Report.cid = id) comparisons).Report.verdict
  in
  Alcotest.(check bool) "identical zero-iqr runs are unchanged" true
    (verdict "D.same" = Report.Unchanged);
  Alcotest.(check bool) "doubling with zero iqr is a regression" true
    (verdict "D.doubles" = Report.Regression);
  Alcotest.(check bool) "has_regression sees it" true (Report.has_regression comparisons)

let test_report_diff_single_sample () =
  (* One sample per side: median = q1 = q3 = the sample; the rule still
     works and a big jump is not hidden by fake noise fences. *)
  let baseline = Report.create () and candidate = Report.create () in
  Report.add baseline ~id:"S.jump" [ 10.0 ];
  Report.add candidate ~id:"S.jump" [ 30.0 ];
  Report.add baseline ~id:"S.flat" [ 10.0 ];
  Report.add candidate ~id:"S.flat" [ 10.0 ];
  let comparisons = Report.diff ~baseline ~candidate () in
  let by_id id = List.find (fun c -> c.Report.cid = id) comparisons in
  Alcotest.(check bool) "single-sample jump is a regression" true
    ((by_id "S.jump").Report.verdict = Report.Regression);
  Alcotest.(check (float 1e-9)) "ratio is computed" 3.0 (by_id "S.jump").Report.ratio;
  Alcotest.(check bool) "single-sample identical is unchanged" true
    ((by_id "S.flat").Report.verdict = Report.Unchanged)

let test_report_diff_missing_side () =
  (* Records present on only one side are Added/Removed, never a
     regression, and their unpaired medians are nan where absent. *)
  let baseline = Report.create () and candidate = Report.create () in
  Report.add baseline ~id:"M.removed" [ 10.0; 11.0 ];
  Report.add candidate ~id:"M.added" [ 5.0; 6.0 ];
  let comparisons = Report.diff ~baseline ~candidate () in
  let by_id id = List.find (fun c -> c.Report.cid = id) comparisons in
  Alcotest.(check bool) "baseline-only is removed" true
    ((by_id "M.removed").Report.verdict = Report.Removed);
  Alcotest.(check bool) "candidate-only is added" true
    ((by_id "M.added").Report.verdict = Report.Added);
  Alcotest.(check bool) "removed has nan new median" true
    (Float.is_nan (by_id "M.removed").Report.new_median);
  Alcotest.(check bool) "added has nan old median" true
    (Float.is_nan (by_id "M.added").Report.old_median);
  Alcotest.(check bool) "added has nan ratio" true (Float.is_nan (by_id "M.added").Report.ratio);
  Alcotest.(check bool) "unpaired records never regress" false
    (Report.has_regression comparisons);
  (* Degenerate empty-vs-empty diff. *)
  Alcotest.(check int) "empty reports diff to nothing" 0
    (List.length (Report.diff ~baseline:(Report.create ()) ~candidate:(Report.create ()) ()))

let () =
  Alcotest.run "telemetry"
    [
      ( "metrics",
        [
          Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "histogram edge cases" `Quick test_histogram_edge_cases;
          Alcotest.test_case "counter saturation" `Quick test_counter_saturation;
          Alcotest.test_case "counter gating" `Quick test_counter_gating;
          Alcotest.test_case "registry snapshot delta" `Quick test_registry_snapshot_delta;
          Alcotest.test_case "delta across reset_all" `Quick test_delta_across_reset_all;
        ] );
      ( "json",
        [
          Alcotest.test_case "emitter/parser roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "metrics registry as JSON" `Quick test_metrics_to_json;
        ] );
      ( "reports",
        [
          Alcotest.test_case "sample stats" `Quick test_report_stats;
          Alcotest.test_case "write/load roundtrip" `Quick test_report_write_load;
          Alcotest.test_case "other schema versions rejected" `Quick
            test_report_rejects_other_schema;
          Alcotest.test_case "regression diffing" `Quick test_report_diff;
          Alcotest.test_case "IQR-overlap noise rule" `Quick test_report_diff_iqr_noise_rule;
          Alcotest.test_case "zero-IQR runs" `Quick test_report_diff_zero_iqr;
          Alcotest.test_case "single-sample runs" `Quick test_report_diff_single_sample;
          Alcotest.test_case "records missing on one side" `Quick test_report_diff_missing_side;
        ] );
      ( "windows",
        [
          Alcotest.test_case "sliding expiry" `Quick test_window_sliding;
          Alcotest.test_case "percentiles and error rate" `Quick
            test_window_percentiles_and_errors;
          Alcotest.test_case "summary JSON roundtrip" `Quick test_window_summary_json_roundtrip;
        ] );
      ( "qlog",
        [
          Alcotest.test_case "emit/load roundtrip" `Quick test_qlog_emit_load_roundtrip;
          Alcotest.test_case "other schema versions rejected" `Quick
            test_qlog_event_json_rejects_other_schema;
          Alcotest.test_case "size-based rotation" `Quick test_qlog_rotation;
          Alcotest.test_case "unwritable sink disables, not raises" `Quick
            test_qlog_unwritable_sink_disables;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest qcheck_histogram_percentile_bound ] );
      ( "recorder",
        [
          Alcotest.test_case "ring buffer and slow flags" `Quick test_recorder_ring;
          Alcotest.test_case "captures engine queries" `Quick
            test_recorder_captures_engine_queries;
        ] );
      ( "profiles",
        [
          Alcotest.test_case "stage tree on Fig. 1" `Quick test_profile_stage_tree;
          Alcotest.test_case "disabled produces no profile" `Quick test_disabled_no_profile;
          Alcotest.test_case "answers invariant under the flag" `Quick
            test_same_answers_when_disabled;
        ] );
      ( "tracing",
        [ Alcotest.test_case "chrome trace roundtrip" `Quick test_chrome_trace_roundtrip ] );
    ]
