(* Pattern minimisation: duplicate merging and output projection preserve
   the semantics they promise. *)

open Expfinder_graph
open Expfinder_pattern
open Expfinder_core

let labels = Array.map Label.of_string [| "A"; "B"; "C" |]

let spec ?(pred = Predicate.always) name label =
  { Pattern.name; label = Some (Label.of_string label); pred }

let random_graph rng =
  let n = 1 + Prng.int rng 30 in
  let m = Prng.int rng (3 * n) in
  Generators.erdos_renyi rng ~n ~m (fun _ ->
      (Prng.choose rng labels, Attrs.of_list [ Attrs.int "exp" (Prng.int rng 4) ]))

(* A query with two interchangeable developers: SA -> SD1 (2), SA -> SD2
   (3), SD1/SD2 -> ST (1).  SD1 and SD2 are structural duplicates. *)
let duplicate_query () =
  Pattern.make_exn
    ~nodes:
      [|
        spec "SA" "A" ~pred:(Predicate.ge_int "exp" 2);
        spec "SD1" "B";
        spec "SD2" "B";
        spec "ST" "C";
      |]
    ~edges:
      [
        (0, 1, Pattern.Bounded 2);
        (0, 2, Pattern.Bounded 3);
        (1, 3, Pattern.Bounded 1);
        (2, 3, Pattern.Bounded 1);
      ]
    ~output:0

let test_duplicates_merge () =
  let q = duplicate_query () in
  let minimised, renaming = Pattern_opt.minimise q in
  Alcotest.(check int) "3 nodes left" 3 (Pattern.size minimised);
  Alcotest.(check int) "one node saved" 1 (Pattern_opt.node_count_saved q);
  Alcotest.(check int) "SD1 and SD2 coincide" renaming.(1) renaming.(2);
  Alcotest.(check int) "output preserved" renaming.(0) (Pattern.output minimised);
  (* The two parallel constraints collapse to the tighter bound. *)
  Alcotest.(check bool) "tighter bound kept" true
    (Pattern.bound_of minimised renaming.(0) renaming.(1) = Some (Pattern.Bounded 2))

let test_no_merge_when_distinct () =
  (* Same label but different predicates: not duplicates. *)
  let q =
    Pattern.make_exn
      ~nodes:
        [|
          spec "SA" "A";
          spec "SD1" "B" ~pred:(Predicate.ge_int "exp" 1);
          spec "SD2" "B" ~pred:(Predicate.ge_int "exp" 2);
        |]
      ~edges:[ (0, 1, Pattern.Bounded 1); (0, 2, Pattern.Bounded 1) ]
      ~output:0
  in
  let minimised, _ = Pattern_opt.minimise q in
  Alcotest.(check int) "nothing merged" 3 (Pattern.size minimised)

let test_self_reference_guard () =
  (* B1 -> B2 and B2 -> B1 with equal specs: merging would need a pattern
     self-loop; the group must be kept apart. *)
  let q =
    Pattern.make_exn
      ~nodes:[| spec "A" "A"; spec "B1" "B"; spec "B2" "B" |]
      ~edges:
        [ (0, 1, Pattern.Bounded 1); (1, 2, Pattern.Bounded 1); (2, 1, Pattern.Bounded 1) ]
      ~output:0
  in
  let minimised, _ = Pattern_opt.minimise q in
  (* B1 has out {B2}, B2 has out {B1}: with both in one prospective class
     the guard refuses; sizes stay. *)
  Alcotest.(check int) "guarded" 3 (Pattern.size minimised)

let prop_minimise_preserves_matches seed =
  let rng = Prng.create seed in
  let g = Snapshot.of_digraph (random_graph rng) in
  (* Inflate a random pattern with a duplicated node to exercise merging. *)
  let base =
    Pattern_gen.generate rng
      { Pattern_gen.default with nodes = 1 + Prng.int rng 3; extra_edges = Prng.int rng 2 }
      ~labels
  in
  let n = Pattern.size base in
  let dup = Prng.int rng n in
  let nodes = Array.init (n + 1) (fun u -> Pattern.node_spec base (min u (n - 1))) in
  nodes.(n) <- Pattern.node_spec base dup;
  let edges =
    Pattern.edges base
    @ List.map (fun (v, b) -> (n, v, b)) (Pattern.out_edges base dup)
    @
    (* give the clone one incoming edge so it is attached *)
    if dup = Pattern.output base then [ (Pattern.output base, n, Pattern.Bounded 2) ]
    else []
  in
  match Pattern.make ~nodes ~edges ~output:(Pattern.output base) with
  | Error _ -> true (* clone collided with an existing edge; skip *)
  | Ok inflated ->
    let minimised, renaming = Pattern_opt.minimise inflated in
    let m_orig = Bounded_sim.run inflated g in
    let m_min = Bounded_sim.run minimised g in
    let ok = ref true in
    for u = 0 to Pattern.size inflated - 1 do
      if Match_relation.matches m_orig u <> Match_relation.matches m_min renaming.(u) then
        ok := false
    done;
    !ok

let prop_projection_preserves_output seed =
  let rng = Prng.create seed in
  let g = Snapshot.of_digraph (random_graph rng) in
  let base =
    Pattern_gen.generate rng
      { Pattern_gen.default with nodes = 1 + Prng.int rng 4; extra_edges = Prng.int rng 2 }
      ~labels
  in
  (* Attach a node the output cannot reach (incoming edge only). *)
  let n = Pattern.size base in
  let nodes = Array.init (n + 1) (fun u -> Pattern.node_spec base (min u (n - 1))) in
  nodes.(n) <- { Pattern.name = "extra"; label = Some labels.(0); pred = Predicate.always };
  let edges = (n, Pattern.output base, Pattern.Bounded 2) :: Pattern.edges base in
  let inflated = Pattern.make_exn ~nodes ~edges ~output:(Pattern.output base) in
  let projected, renaming = Pattern_opt.project_to_output inflated in
  if renaming.(n) <> -1 then false (* the extra node must be dropped *)
  else begin
    let m_full = Bounded_sim.run inflated g in
    let m_proj = Bounded_sim.run projected g in
    let out = Pattern.output inflated in
    Match_relation.matches m_full out
    = Match_relation.matches m_proj (Pattern.output projected)
    (* totality caveat: projection can only help the output node, never
       shrink its kernel matches *)
    && Pattern.size projected < Pattern.size inflated
  end

let qcheck_cases =
  [
    QCheck.Test.make ~count:80 ~name:"minimise preserves matches" QCheck.small_int (fun s ->
        prop_minimise_preserves_matches (s + 1));
    QCheck.Test.make ~count:80 ~name:"projection preserves output matches" QCheck.small_int
      (fun s -> prop_projection_preserves_output (s + 1));
  ]

let () =
  Alcotest.run "pattern_opt"
    [
      ( "minimise",
        [
          Alcotest.test_case "duplicates merge" `Quick test_duplicates_merge;
          Alcotest.test_case "distinct preserved" `Quick test_no_merge_when_distinct;
          Alcotest.test_case "self-reference guard" `Quick test_self_reference_guard;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_cases);
    ]
