(* Query planner: candidate ordering, early exit, pruning, strategy
   choice — and above all, plan-execution equivalence with the unplanned
   engines. *)

open Expfinder_graph
open Expfinder_pattern
open Expfinder_core
module Collab = Expfinder_workload.Collab

let labels = Array.map Label.of_string [| "A"; "B"; "C" |]

let random_graph rng =
  let n = 1 + Prng.int rng 30 in
  let m = Prng.int rng (3 * n) in
  Generators.erdos_renyi rng ~n ~m (fun _ ->
      (Prng.choose rng labels, Attrs.of_list [ Attrs.int "exp" (Prng.int rng 4) ]))

let random_pattern rng ~simulation =
  let c =
    {
      Pattern_gen.default with
      nodes = 1 + Prng.int rng 4;
      extra_edges = Prng.int rng 3;
      max_bound = 3;
      condition_prob = 0.5;
      condition_range = (0, 3);
    }
  in
  let c = if simulation then Pattern_gen.simulation_config c else c in
  Pattern_gen.generate rng c ~labels

let test_candidate_order_sorted () =
  let g = Snapshot.of_digraph (Collab.graph ()) in
  let plan = Planner.plan (Collab.query ()) g in
  let sorted = ref true in
  Array.iteri
    (fun i u ->
      if i > 0 then begin
        let prev = plan.Planner.candidate_order.(i - 1) in
        if plan.Planner.estimates.(prev) > plan.Planner.estimates.(u) then sorted := false
      end)
    plan.Planner.candidate_order;
  Alcotest.(check bool) "ascending estimates" true !sorted;
  Alcotest.(check int) "order is a permutation" (Pattern.size (Collab.query ()))
    (List.length (List.sort_uniq compare (Array.to_list plan.Planner.candidate_order)))

let test_estimates_reasonable () =
  let g = Snapshot.of_digraph (Collab.graph ()) in
  let q = Collab.query () in
  let plan = Planner.plan q g in
  (* SA with exp >= 5: exactly Walt and Bob; the estimate probes the full
     population here, so it is exact. *)
  Alcotest.(check bool) "SA estimate = 2" true (plan.Planner.estimates.(0) = 2.0);
  Alcotest.(check bool) "SD estimate = 4" true (plan.Planner.estimates.(1) = 4.0)

let test_prunable_flags () =
  let g = Snapshot.of_digraph (Collab.graph ()) in
  let q = Collab.query () in
  let plan = Planner.plan q g in
  Alcotest.(check bool) "SA has out edges -> prunable" true plan.Planner.prunable.(0);
  (* BA has no outgoing pattern edges. *)
  Alcotest.(check bool) "BA not prunable" false plan.Planner.prunable.(2)

let test_strategy_choice () =
  let g = Snapshot.of_digraph (Collab.graph ()) in
  let sim_plan = Planner.plan (Collab.q1 ()) g in
  Alcotest.(check bool) "bound-1 -> simulation" true
    (sim_plan.Planner.strategy = Planner.Use_simulation);
  let bsim_plan = Planner.plan (Collab.query ()) g in
  Alcotest.(check bool) "bounded -> bounded strategy" true
    (match bsim_plan.Planner.strategy with Planner.Use_bounded _ -> true | _ -> false)

let test_early_exit_on_impossible () =
  (* A label absent from the graph: the plan must answer empty without
     touching the other candidate sets. *)
  let g = Snapshot.of_digraph (Collab.graph ()) in
  let nodes =
    [|
      { Pattern.name = "SA"; label = Some (Label.of_string "SA"); pred = Predicate.always };
      { Pattern.name = "CEO"; label = Some (Label.of_string "CEO"); pred = Predicate.always };
    |]
  in
  let q = Pattern.make_exn ~nodes ~edges:[ (0, 1, Pattern.Bounded 2) ] ~output:0 in
  let m = Planner.run q g in
  Alcotest.(check int) "empty kernel" 0 (Match_relation.total m);
  Alcotest.(check bool) "not total" false (Match_relation.is_total m)

let test_explain_mentions_everything () =
  let g = Snapshot.of_digraph (Collab.graph ()) in
  let q = Collab.query () in
  let text = Planner.explain q (Planner.plan q g) in
  List.iter
    (fun needle ->
      let n = String.length text and k = String.length needle in
      let rec scan i = i + k <= n && (String.sub text i k = needle || scan (i + 1)) in
      Alcotest.(check bool) ("explain mentions " ^ needle) true (scan 0))
    [ "SA"; "SD"; "BA"; "ST"; "strategy"; "candidates" ]

let contains text needle =
  let n = String.length text and k = String.length needle in
  let rec scan i = i + k <= n && (String.sub text i k = needle || scan (i + 1)) in
  scan 0

let test_execute_records_actuals () =
  let g = Snapshot.of_digraph (Collab.graph ()) in
  let q = Collab.query () in
  let m, plan = Planner.run_with_plan q g in
  Alcotest.(check bool) "kernel is total" true (Match_relation.is_total m);
  match plan.Planner.actuals with
  | None -> Alcotest.fail "execute must record actuals"
  | Some { Planner.candidates; matched } ->
    (* The Fig. 1 estimates are exact (full-population probes), so every
       candidate set matches its estimate and nothing is misestimated. *)
    Array.iteri
      (fun u est ->
        Alcotest.(check int)
          (Printf.sprintf "node %d actual = estimate" u)
          (int_of_float est) candidates.(u))
      plan.Planner.estimates;
    (* SD keeps Mat/Dan/Pat of its 4 candidates; refinement removed Fred. *)
    Alcotest.(check int) "SD matched 3 of 4" 3 matched.(1);
    Alcotest.(check int) "SA matched both" 2 matched.(0)

let test_early_exit_actuals_sentinel () =
  let g = Snapshot.of_digraph (Collab.graph ()) in
  let nodes =
    [|
      { Pattern.name = "SA"; label = Some (Label.of_string "SA"); pred = Predicate.always };
      { Pattern.name = "CEO"; label = Some (Label.of_string "CEO"); pred = Predicate.always };
    |]
  in
  let q = Pattern.make_exn ~nodes ~edges:[ (0, 1, Pattern.Bounded 2) ] ~output:0 in
  let _, plan = Planner.run_with_plan q g in
  match plan.Planner.actuals with
  | None -> Alcotest.fail "early exit still records actuals"
  | Some { Planner.candidates; matched } ->
    (* CEO (no candidates) exits first; SA's set is never materialised. *)
    Alcotest.(check int) "empty node has 0 candidates" 0 candidates.(1);
    Alcotest.(check int) "unmaterialised node is -1" (-1) candidates.(0);
    Alcotest.(check int) "nothing matched" 0 (matched.(0) + matched.(1))

let test_explain_analyze_table () =
  let g = Snapshot.of_digraph (Collab.graph ()) in
  let q = Collab.query () in
  let _, plan = Planner.run_with_plan q g in
  let text = Planner.explain_analyze q plan in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("explain_analyze mentions " ^ needle) true (contains text needle))
    [ "est.cand"; "act.cand"; "matched"; "removed"; "SA"; "SD" ];
  (* Without execution there is no table, only a note. *)
  let unexecuted = Planner.explain_analyze q (Planner.plan q g) in
  Alcotest.(check bool)
    "unexecuted plan says so" true
    (contains unexecuted "not executed")

let test_misestimate_counter () =
  let open Expfinder_telemetry in
  let c = Metrics.counter "planner.misestimate" in
  set_enabled true;
  Fun.protect
    ~finally:(fun () -> set_enabled false)
    (fun () ->
      Counter.reset c;
      let g = Snapshot.of_digraph (Collab.graph ()) in
      let q = Collab.query () in
      let _ = Planner.run q g in
      Alcotest.(check int) "exact estimates: no misestimate" 0 (Counter.value c);
      (* Cook a plan whose estimates are wildly off: with smoothing,
         (60+1)/(2+1) > 4 flags SA (2 actual candidates). *)
      let plan = Planner.plan q g in
      Array.fill plan.Planner.estimates 0 (Array.length plan.Planner.estimates) 60.0;
      let _ = Planner.execute plan q g in
      Alcotest.(check bool) "misestimates counted" true (Counter.value c > 0))

let prop_planned_equals_unplanned ~simulation seed =
  let rng = Prng.create seed in
  let g = Snapshot.of_digraph (random_graph rng) in
  let pattern = random_pattern rng ~simulation in
  let unplanned =
    if Pattern.is_simulation_pattern pattern then Simulation.run pattern g
    else Bounded_sim.run pattern g
  in
  let planned = Planner.run pattern g in
  (* Degree pruning and early exit may shave pairs out of a non-total
     kernel, but never change totality or the total kernel itself. *)
  if Match_relation.is_total unplanned then Match_relation.equal planned unplanned
  else not (Match_relation.is_total planned)

let prop_planned_subset_of_unplanned seed =
  let rng = Prng.create seed in
  let g = Snapshot.of_digraph (random_graph rng) in
  let pattern = random_pattern rng ~simulation:false in
  let unplanned = Bounded_sim.run pattern g in
  let planned = Planner.run pattern g in
  List.for_all (fun (u, v) -> Match_relation.mem unplanned u v) (Match_relation.pairs planned)

let qcheck_cases =
  [
    QCheck.Test.make ~count:80 ~name:"planned sim = unplanned" QCheck.small_int (fun s ->
        prop_planned_equals_unplanned ~simulation:true (s + 1));
    QCheck.Test.make ~count:80 ~name:"planned bsim = unplanned" QCheck.small_int (fun s ->
        prop_planned_equals_unplanned ~simulation:false (s + 1));
    QCheck.Test.make ~count:60 ~name:"planned kernel never adds pairs" QCheck.small_int
      (fun s -> prop_planned_subset_of_unplanned (s + 1));
  ]

let () =
  Alcotest.run "planner"
    [
      ( "plan",
        [
          Alcotest.test_case "candidate order" `Quick test_candidate_order_sorted;
          Alcotest.test_case "estimates" `Quick test_estimates_reasonable;
          Alcotest.test_case "prunable flags" `Quick test_prunable_flags;
          Alcotest.test_case "strategy choice" `Quick test_strategy_choice;
          Alcotest.test_case "early exit" `Quick test_early_exit_on_impossible;
          Alcotest.test_case "explain" `Quick test_explain_mentions_everything;
        ] );
      ( "analyze",
        [
          Alcotest.test_case "execute records actuals" `Quick test_execute_records_actuals;
          Alcotest.test_case "early-exit sentinel" `Quick test_early_exit_actuals_sentinel;
          Alcotest.test_case "explain_analyze table" `Quick test_explain_analyze_table;
          Alcotest.test_case "misestimate counter" `Quick test_misestimate_counter;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_cases);
    ]
