(* Smoke test for the experiment harness: run one cheap experiment as a
   subprocess so a broken bench/main.ml is caught by `dune runtest`
   instead of at benchmark time, and validate the --json report against
   the schema the regression gate consumes. *)

module Telemetry = Expfinder_telemetry

let exe =
  let candidates =
    [
      Filename.concat (Filename.dirname Sys.executable_name) "../bench/main.exe";
      "_build/default/bench/main.exe";
      "../bench/main.exe";
    ]
  in
  List.find_opt Sys.file_exists candidates

let run exe args =
  let cmd = Filename.quote_command exe args ^ " 2>/dev/null" in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  let code = match status with Unix.WEXITED c -> c | _ -> -1 in
  (code, Buffer.contents buf)

let contains haystack needle =
  let n = String.length haystack and k = String.length needle in
  let rec scan i = i + k <= n && (String.sub haystack i k = needle || scan (i + 1)) in
  scan 0

let test_exp_f1 exe () =
  let code, out = run exe [ "--only"; "EXP-F1" ] in
  Alcotest.(check int) "harness exits 0" 0 code;
  Alcotest.(check bool) "EXP-F1 ran" true (contains out "EXP-F1");
  Alcotest.(check bool) "its paper check passed" true (contains out "[ok]");
  Alcotest.(check bool) "no check failed" false (contains out "FAILED");
  (* The filter really filtered: no other experiment header appears. *)
  Alcotest.(check bool) "only EXP-F1 ran" false (contains out "EXP-F2")

let test_json_report exe () =
  let path = Filename.temp_file "expfinder-bench" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let code, out = run exe [ "--only"; "EXP-F1"; "--json"; path ] in
      Alcotest.(check int) "harness exits 0" 0 code;
      Alcotest.(check bool) "report announced" true (contains out "structured report");
      (* The report loads under the current schema (version checked,
         stats recomputed from the raw samples). *)
      match Telemetry.Report.load path with
      | Error e -> Alcotest.fail ("report does not load: " ^ e)
      | Ok report -> (
        match Telemetry.Report.records report with
        | [ record ] ->
          let open Telemetry.Report in
          Alcotest.(check string) "one wall record for the experiment" "EXP-F1" record.id;
          Alcotest.(check string) "experiment id" "EXP-F1" record.experiment;
          Alcotest.(check string) "milliseconds" "ms" record.units;
          Alcotest.(check bool) "raw samples present" true (record.stats.samples <> []);
          Alcotest.(check bool)
            "median is a finite duration" true
            (Float.is_finite record.stats.median && record.stats.median >= 0.0)
        | records ->
          Alcotest.fail
            (Printf.sprintf "expected exactly 1 record for EXP-F1, got %d"
               (List.length records))))

let () =
  match exe with
  | None -> Alcotest.run "bench_smoke" [ ("skipped", []) ]
  | Some exe ->
    Alcotest.run "bench_smoke"
      [
        ( "harness",
          [
            Alcotest.test_case "EXP-F1 via --only" `Quick (test_exp_f1 exe);
            Alcotest.test_case "--json report schema" `Quick (test_json_report exe);
          ] );
      ]
