(* End-to-end checks of the paper's worked examples (Fig. 1, Examples 1-3).
   These are the ground-truth anchors of the whole reproduction. *)

open Expfinder_graph
open Expfinder_pattern
open Expfinder_core
module Collab = Expfinder_workload.Collab

let snapshot () = Snapshot.of_digraph (Collab.graph ())

let run_query g = Bounded_sim.run (Collab.query ()) g

let sorted_matches m u = Match_relation.matches m u

(* Example 1: M(Q,G) = {(SA,Bob),(SA,Walt),(BA,Jean),(SD,Mat),(SD,Dan),
   (SD,Pat),(ST,Eva)}. *)
let test_example1 () =
  let g = snapshot () in
  let m = run_query g in
  Alcotest.(check bool) "M is total" true (Match_relation.is_total m);
  Alcotest.(check (list int)) "SA matches" [ Collab.walt; Collab.bob ] (sorted_matches m 0);
  Alcotest.(check (list int))
    "SD matches"
    (List.sort compare [ Collab.mat; Collab.dan; Collab.pat ])
    (sorted_matches m 1);
  Alcotest.(check (list int)) "BA matches" [ Collab.jean ] (sorted_matches m 2);
  Alcotest.(check (list int)) "ST matches" [ Collab.eva ] (sorted_matches m 3);
  Alcotest.(check int) "7 pairs" 7 (Match_relation.total m)

(* The SA->BA edge is witnessed by a path of length exactly 3 from Bob to
   Jean. *)
let test_example1_path () =
  let g = snapshot () in
  let dist = Distance.distances_from g Collab.bob in
  Alcotest.(check int) "dist(Bob,Jean)" 3 dist.(Collab.jean)

(* Both strategies and the consistency oracle agree. *)
let test_strategies_agree () =
  let g = snapshot () in
  let m1 = Bounded_sim.run ~strategy:Bounded_sim.Counters (Collab.query ()) g in
  let m2 = Bounded_sim.run ~strategy:Bounded_sim.Naive (Collab.query ()) g in
  Alcotest.(check bool) "counters = naive" true (Match_relation.equal m1 m2);
  Alcotest.(check bool) "consistent" true (Bounded_sim.consistent (Collab.query ()) g m1)

(* Example 2: f(SA,Bob) = 9/5, f(SA,Walt) = 7/3, Bob is top-1. *)
let test_example2 () =
  let g = snapshot () in
  let q = Collab.query () in
  let m = run_query g in
  let gr = Result_graph.build q g m in
  let rank_bob = Ranking.rank_of gr Collab.bob in
  let rank_walt = Ranking.rank_of gr Collab.walt in
  Alcotest.(check (pair int int)) "f(SA,Bob) = 9/5" (9, 5) (rank_bob.num, rank_bob.den);
  Alcotest.(check (pair int int)) "f(SA,Walt) = 7/3" (7, 3) (rank_walt.num, rank_walt.den);
  let top = Ranking.top_k gr ~output_matches:(Match_relation.matches m (Pattern.output q)) ~k:1 in
  match top with
  | [ (v, _) ] -> Alcotest.(check int) "top-1 is Bob" Collab.bob v
  | _ -> Alcotest.fail "expected exactly one top-1 match"

(* The result graph has exactly the Fig. 1 weighted edges. *)
let test_result_graph_edges () =
  let g = snapshot () in
  let q = Collab.query () in
  let m = run_query g in
  let gr = Result_graph.build q g m in
  let expect = function
    | v, v' -> Result_graph.weight gr v v'
  in
  Alcotest.(check (option int)) "Bob->Dan" (Some 1) (expect (Collab.bob, Collab.dan));
  Alcotest.(check (option int)) "Bob->Pat" (Some 2) (expect (Collab.bob, Collab.pat));
  Alcotest.(check (option int)) "Dan->Bob" (Some 1) (expect (Collab.dan, Collab.bob));
  Alcotest.(check (option int)) "Pat->Bob" (Some 2) (expect (Collab.pat, Collab.bob));
  Alcotest.(check (option int)) "Walt->Mat" (Some 2) (expect (Collab.walt, Collab.mat));
  Alcotest.(check (option int)) "Mat->Walt" (Some 2) (expect (Collab.mat, Collab.walt));
  Alcotest.(check (option int)) "Bob->Jean" (Some 3) (expect (Collab.bob, Collab.jean));
  Alcotest.(check (option int)) "Walt->Jean" (Some 3) (expect (Collab.walt, Collab.jean));
  Alcotest.(check (option int)) "Eva->Jean" (Some 1) (expect (Collab.eva, Collab.jean));
  Alcotest.(check (option int)) "no Bob->Mat" None (expect (Collab.bob, Collab.mat));
  Alcotest.(check int) "9 result edges" 9 (Result_graph.edge_count gr);
  Alcotest.(check int) "7 result nodes" 7 (Result_graph.node_count gr)

(* Example 3 (batch view): inserting e1 adds exactly (SD, Fred). *)
let test_example3_batch () =
  let g0 = Collab.graph () in
  let before = Bounded_sim.run (Collab.query ()) (Snapshot.of_digraph g0) in
  let src, dst = Collab.e1 in
  Alcotest.(check bool) "e1 inserted" true (Digraph.add_edge g0 src dst);
  let after = Bounded_sim.run (Collab.query ()) (Snapshot.of_digraph g0) in
  Alcotest.(check bool) "Fred not matched before" false (Match_relation.mem before 1 Collab.fred);
  Alcotest.(check bool) "Fred matched after" true (Match_relation.mem after 1 Collab.fred);
  let delta =
    List.filter
      (fun (u, v) -> not (Match_relation.mem before u v))
      (Match_relation.pairs after)
  in
  Alcotest.(check (list (pair int int))) "delta = {(SD,Fred)}" [ (1, Collab.fred) ] delta;
  Alcotest.(check int) "nothing removed" (Match_relation.total before + 1)
    (Match_relation.total after)

(* Fig. 4/5: queries Q1-Q3 all have matches and a well-defined top-1. *)
let test_fig5_queries () =
  let g = snapshot () in
  List.iter
    (fun (name, q) ->
      let m = Bounded_sim.run q g in
      Alcotest.(check bool) (name ^ " total") true (Match_relation.is_total m);
      let gr = Result_graph.build q g m in
      let top =
        Ranking.top_k gr ~output_matches:(Match_relation.matches m (Pattern.output q)) ~k:1
      in
      Alcotest.(check int) (name ^ " top-1 exists") 1 (List.length top))
    [ ("Q1", Collab.q1 ()); ("Q2", Collab.q2 ()); ("Q3", Collab.q3 ()) ]

(* Q1 is a plain-simulation pattern, so the simulation engine applies and
   agrees with bounded simulation. *)
let test_q1_simulation () =
  let g = snapshot () in
  let q1 = Collab.q1 () in
  Alcotest.(check bool) "Q1 is simulation" true (Pattern.is_simulation_pattern q1);
  let ms = Simulation.run q1 g in
  let mb = Bounded_sim.run q1 g in
  Alcotest.(check bool) "sim = bsim on bound-1 pattern" true (Match_relation.equal ms mb);
  Alcotest.(check (list int)) "Q1 SA = {Bob}" [ Collab.bob ] (Match_relation.matches ms 0)

let () =
  Alcotest.run "paper_examples"
    [
      ( "fig1",
        [
          Alcotest.test_case "example1 match set" `Quick test_example1;
          Alcotest.test_case "example1 Bob->Jean path" `Quick test_example1_path;
          Alcotest.test_case "strategies agree" `Quick test_strategies_agree;
          Alcotest.test_case "example2 ranking" `Quick test_example2;
          Alcotest.test_case "result graph edges" `Quick test_result_graph_edges;
          Alcotest.test_case "example3 delta" `Quick test_example3_batch;
          Alcotest.test_case "fig5 queries" `Quick test_fig5_queries;
          Alcotest.test_case "q1 simulation" `Quick test_q1_simulation;
        ] );
    ]
