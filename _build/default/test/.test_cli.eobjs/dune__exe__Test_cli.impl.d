test/test_cli.ml: Alcotest Array Buffer Filename Fun List String Sys Unix
