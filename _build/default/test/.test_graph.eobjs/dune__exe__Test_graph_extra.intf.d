test/test_graph_extra.mli:
