test/test_subiso.mli:
