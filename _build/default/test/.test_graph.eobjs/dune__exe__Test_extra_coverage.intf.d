test/test_extra_coverage.mli:
