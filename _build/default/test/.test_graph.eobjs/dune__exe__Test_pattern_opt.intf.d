test/test_pattern_opt.mli:
