test/test_storage.ml: Alcotest Array Cache Digraph Expfinder_core Expfinder_graph Expfinder_pattern Expfinder_storage Expfinder_workload Filename Fun Graph_store List Match_relation Pattern Sys
