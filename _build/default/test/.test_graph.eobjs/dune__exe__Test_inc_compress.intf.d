test/test_inc_compress.mli:
