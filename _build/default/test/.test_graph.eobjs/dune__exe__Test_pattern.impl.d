test/test_pattern.ml: Alcotest Array Attr Attrs Expfinder_graph Expfinder_pattern Expfinder_workload Fun Label List Pattern Pattern_gen Pattern_io Predicate Prng QCheck QCheck_alcotest String
