(* Incremental compressed-graph maintenance: reports, the hybrid
   recompute fallback, drift bounds, and Sparse_refine unit behaviour. *)

open Expfinder_graph
open Expfinder_pattern
open Expfinder_core
open Expfinder_incremental
open Expfinder_compression
module Synthetic = Expfinder_workload.Synthetic
module Queries = Expfinder_workload.Queries

let small_org () = Synthetic.org (Prng.create 21) ~teams:20 ~team_size:6

let test_create_matches_fresh () =
  let g = small_org () in
  let inc = Inc_compress.create ~atoms:Queries.atom_universe g in
  Alcotest.(check int) "create = fresh compression"
    (Inc_compress.fresh_block_count inc)
    (Compress.block_count (Inc_compress.current inc))

let test_report_fields () =
  let g = small_org () in
  let inc = Inc_compress.create ~atoms:Queries.atom_universe g in
  let before = Compress.block_count (Inc_compress.current inc) in
  let report =
    Inc_compress.apply_updates inc g
      [ Update.Insert_edge (0, Digraph.node_count g - 1) ]
  in
  Alcotest.(check int) "one effective" 1 report.Inc_compress.effective;
  Alcotest.(check int) "blocks_before recorded" before report.Inc_compress.blocks_before;
  Alcotest.(check int) "blocks_after matches current" report.Inc_compress.blocks_after
    (Compress.block_count (Inc_compress.current inc));
  Alcotest.(check bool) "area is positive" true (report.Inc_compress.area > 0)

let test_no_op_update () =
  let g = small_org () in
  let inc = Inc_compress.create ~atoms:Queries.atom_universe g in
  let before = Compress.block_count (Inc_compress.current inc) in
  (* Inserting an existing edge is a no-op: nothing may change. *)
  let u, v =
    let result = ref (0, 0) in
    (try Digraph.iter_edges g (fun a b -> result := (a, b); raise Exit) with Exit -> ());
    !result
  in
  let report = Inc_compress.apply_updates inc g [ Update.Insert_edge (u, v) ] in
  Alcotest.(check int) "zero effective" 0 report.Inc_compress.effective;
  Alcotest.(check int) "blocks unchanged" before report.Inc_compress.blocks_after

let test_hybrid_fallback_restores_optimality () =
  (* A majority-area batch triggers recompression, so drift resets. *)
  let g = small_org () in
  let inc = Inc_compress.create ~atoms:Queries.atom_universe g in
  let rng = Prng.create 5 in
  let updates = Update.random_mixed rng g (Digraph.edge_count g / 2) in
  let report = Inc_compress.apply_updates inc g updates in
  Alcotest.(check int) "coarsest after big batch" (Inc_compress.fresh_block_count inc)
    report.Inc_compress.blocks_after

let test_rebuild_resyncs () =
  let g = small_org () in
  let inc = Inc_compress.create ~atoms:Queries.atom_universe g in
  ignore (Digraph.add_edge g 0 5 : bool);
  (* Direct mutation desynchronises the tracker; apply_updates refuses,
     rebuild resynchronises. *)
  (try
     ignore (Inc_compress.apply_updates inc g [] : Inc_compress.report);
     Alcotest.fail "expected out-of-sync rejection"
   with Invalid_argument _ -> ());
  Inc_compress.rebuild inc g;
  let report = Inc_compress.apply_updates inc g [ Update.Delete_edge (0, 5) ] in
  Alcotest.(check int) "works after rebuild" 1 report.Inc_compress.effective

(* --- Sparse_refine direct unit tests ----------------------------------- *)

module CsrRefine = Sparse_refine.Make (Csr)

let chain_graph () =
  (* A -> B -> C chain *)
  let a = Label.of_string "A" and b = Label.of_string "B" and c = Label.of_string "C" in
  Csr.of_digraph (Digraph.of_edges ~labels:[| a; b; c |] [ (0, 1); (1, 2) ])

let chain_pattern () =
  Pattern.make_exn
    ~nodes:
      [|
        { Pattern.name = "A"; label = Some (Label.of_string "A"); pred = Predicate.always };
        { Pattern.name = "B"; label = Some (Label.of_string "B"); pred = Predicate.always };
      |]
    ~edges:[ (0, 1, Pattern.Bounded 1) ]
    ~output:0

let test_sparse_refine_respects_frozen () =
  let g = chain_graph () in
  let p = chain_pattern () in
  (* Initial relation wrongly claims (B-pattern-node, node 2); with node 2
     outside the area it must survive (frozen), and node 0 must then keep
     its membership via... node 1 only. *)
  let initial = Match_relation.of_pairs ~pattern_size:2 ~graph_size:3 [ (0, 0); (1, 1); (1, 2) ] in
  let area = Bitset.create 3 in
  Bitset.add area 0;
  let refined = CsrRefine.simulation p g ~initial ~area in
  Alcotest.(check bool) "frozen pair kept" true (Match_relation.mem refined 1 2);
  Alcotest.(check bool) "area pair justified and kept" true (Match_relation.mem refined 0 0)

let test_sparse_refine_removes_unjustified () =
  let g = chain_graph () in
  let p = chain_pattern () in
  (* Node 2 has no successors: as an area member claiming the A-role it
     must be removed. *)
  let initial = Match_relation.of_pairs ~pattern_size:2 ~graph_size:3 [ (0, 2); (1, 1) ] in
  let area = Bitset.create 3 in
  Bitset.add area 2;
  let refined = CsrRefine.simulation p g ~initial ~area in
  Alcotest.(check bool) "unjustified removed" false (Match_relation.mem refined 0 2)

let test_sparse_bounded_rejects_unbounded () =
  let g = chain_graph () in
  let p =
    Pattern.make_exn
      ~nodes:
        [|
          { Pattern.name = "A"; label = Some (Label.of_string "A"); pred = Predicate.always };
          { Pattern.name = "C"; label = Some (Label.of_string "C"); pred = Predicate.always };
        |]
      ~edges:[ (0, 1, Pattern.Unbounded) ]
      ~output:0
  in
  let initial = Match_relation.create ~pattern_size:2 ~graph_size:3 in
  let area = Bitset.create 3 in
  Alcotest.check_raises "unbounded rejected"
    (Invalid_argument "Sparse_refine.bounded: unbounded pattern edge")
    (fun () -> ignore (CsrRefine.bounded p g ~initial ~area))

let test_sparse_bounded_distance_two () =
  let g = chain_graph () in
  let p =
    Pattern.make_exn
      ~nodes:
        [|
          { Pattern.name = "A"; label = Some (Label.of_string "A"); pred = Predicate.always };
          { Pattern.name = "C"; label = Some (Label.of_string "C"); pred = Predicate.always };
        |]
      ~edges:[ (0, 1, Pattern.Bounded 2) ]
      ~output:0
  in
  let initial = Match_relation.of_pairs ~pattern_size:2 ~graph_size:3 [ (0, 0); (1, 2) ] in
  let area = Bitset.create 3 in
  Bitset.add area 0;
  Bitset.add area 2;
  let refined = CsrRefine.bounded p g ~initial ~area in
  Alcotest.(check bool) "A reaches C within 2" true (Match_relation.mem refined 0 0);
  Alcotest.(check bool) "C kept" true (Match_relation.mem refined 1 2)

let () =
  Alcotest.run "inc_compress"
    [
      ( "maintenance",
        [
          Alcotest.test_case "create = fresh" `Quick test_create_matches_fresh;
          Alcotest.test_case "report fields" `Quick test_report_fields;
          Alcotest.test_case "no-op update" `Quick test_no_op_update;
          Alcotest.test_case "hybrid fallback" `Quick test_hybrid_fallback_restores_optimality;
          Alcotest.test_case "rebuild resyncs" `Quick test_rebuild_resyncs;
        ] );
      ( "sparse_refine",
        [
          Alcotest.test_case "respects frozen" `Quick test_sparse_refine_respects_frozen;
          Alcotest.test_case "removes unjustified" `Quick test_sparse_refine_removes_unjustified;
          Alcotest.test_case "rejects unbounded" `Quick test_sparse_bounded_rejects_unbounded;
          Alcotest.test_case "bounded distance 2" `Quick test_sparse_bounded_distance_two;
        ] );
    ]
