open Expfinder_graph
open Expfinder_pattern

let distinct_labels g =
  let seen = Hashtbl.create 16 in
  Digraph.iter_nodes g (fun v -> Hashtbl.replace seen (Digraph.label g v) ());
  let labels = Hashtbl.fold (fun l () acc -> l :: acc) seen [] in
  Array.of_list (List.sort Label.compare labels)

let thresholds = [ 2; 3; 5 ]

let atom_universe =
  List.map
    (fun k -> { Predicate.attr = "exp"; op = Predicate.Ge; value = Attr.Int k })
    thresholds

let workload rng ?(nodes = 4) ?(max_bound = 3) ?(count = 10) ~simulation g =
  let labels = distinct_labels g in
  let config =
    {
      Pattern_gen.default with
      nodes;
      extra_edges = 1;
      max_bound;
      condition_prob = 0.6;
      condition_attr = "exp";
      condition_range = (2, 5);
    }
  in
  let config = if simulation then Pattern_gen.simulation_config config else config in
  (* Clamp generated thresholds onto the declared universe so compressed
     evaluation supports every query. *)
  let clamp p =
    let nodes =
      Array.init (Pattern.size p) (fun u ->
          let spec = Pattern.node_spec p u in
          let pred =
            Predicate.of_atoms
              (List.map
                 (fun a ->
                   match a.Predicate.value with
                   | Attr.Int k ->
                     let k' =
                       List.fold_left
                         (fun best t -> if t <= k then t else best)
                         (List.hd thresholds) thresholds
                     in
                     { a with Predicate.value = Attr.Int k' }
                   | _ -> a)
                 (Predicate.atoms spec.Pattern.pred))
          in
          { spec with Pattern.pred })
    in
    Pattern.make_exn ~nodes ~edges:(Pattern.edges p) ~output:(Pattern.output p)
  in
  List.map clamp (Pattern_gen.generate_many rng config ~labels count)
