lib/workload/synthetic.mli: Digraph Expfinder_graph Label Prng
