lib/workload/collab.mli: Digraph Expfinder_graph Expfinder_pattern Pattern
