lib/workload/synthetic.ml: Array Attr Attrs Digraph Expfinder_graph Generators Label Printf Prng Vec
