lib/workload/queries.mli: Digraph Expfinder_graph Expfinder_pattern Label Pattern Predicate Prng
