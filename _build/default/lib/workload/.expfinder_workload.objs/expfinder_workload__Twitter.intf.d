lib/workload/twitter.mli: Digraph Expfinder_graph Label Prng
