lib/workload/twitter.ml: Array Attrs Digraph Expfinder_graph Label Printf Prng Synthetic Vec
