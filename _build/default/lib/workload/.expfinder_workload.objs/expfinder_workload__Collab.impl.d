lib/workload/collab.ml: Array Attrs Digraph Expfinder_graph Expfinder_pattern Label List Pattern Predicate
