lib/workload/queries.ml: Array Attr Digraph Expfinder_graph Expfinder_pattern Hashtbl Label List Pattern Pattern_gen Predicate
