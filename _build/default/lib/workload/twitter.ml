open Expfinder_graph

let interests = [| "ML"; "DB"; "Sys"; "Sec"; "UX"; "PL" |]

let interest_labels () = Array.map Label.of_string interests

(* Preferential attachment with two behaviours: "active" accounts follow
   ~4 earlier accounts; "lurkers" (about half of the population) follow a
   single popular account.  The lurker fringe is what makes real follower
   graphs compressible — lurkers of the same interest, seniority bucket
   and hub are indistinguishable. *)
let generate rng ~n =
  let labels = interest_labels () in
  let g = Digraph.create ~capacity:n () in
  for i = 0 to n - 1 do
    ignore
      (Digraph.add_node g
         ~attrs:
           (Attrs.of_list
              [ Attrs.int "exp" (Prng.int rng 8); Attrs.str "name" (Printf.sprintf "user%d" i) ])
         (Prng.choose rng labels)
        : int)
  done;
  (* Repeated-endpoint list: picking a uniform element is picking
     proportional to (in-degree + 1).  Lurkers (55% of accounts) follow a
     single early celebrity and are never followed back, so lurkers of
     the same interest, seniority and celebrity are indistinguishable. *)
  let targets = Vec.create ~capacity:(2 * n) ~dummy:(-1) () in
  let celebrity_count = max 8 (n / 250) in
  for v = 0 to n - 1 do
    let lurker = v > celebrity_count && Prng.float rng 1.0 < 0.55 in
    if lurker then begin
      (* Preferential choice among the celebrities: rejection-sample the
         endpoint list for an early account. *)
      let placed = ref false and attempts = ref 0 in
      while (not !placed) && !attempts < 50 do
        incr attempts;
        let t = Vec.get targets (Prng.int rng (Vec.length targets)) in
        if t < celebrity_count && Digraph.add_edge g v t then placed := true
      done;
      if not !placed then
        ignore (Digraph.add_edge g v (Prng.int rng celebrity_count) : bool)
    end
    else begin
      if v > 0 then begin
        let wanted = min 4 v in
        let placed = ref 0 and attempts = ref 0 in
        while !placed < wanted && !attempts < 20 * wanted do
          incr attempts;
          let t = Vec.get targets (Prng.int rng (Vec.length targets)) in
          if Digraph.add_edge g v t then begin
            incr placed;
            Vec.push targets t
          end
        done
      end;
      Vec.push targets v
    end
  done;
  (* Popularity-correlated attributes: popular accounts get an experience
     boost and their follower count recorded. *)
  Digraph.iter_nodes g (fun v ->
      let followers = Digraph.in_degree g v in
      let exp = Synthetic.exp_of g v in
      let boosted = min 10 (exp + if followers > 20 then 3 else 0) in
      Digraph.set_attrs g v
        (Attrs.union (Digraph.attrs g v)
           (Attrs.of_list [ Attrs.int "followers" followers; Attrs.int "exp" boosted ])));
  g
