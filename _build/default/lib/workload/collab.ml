open Expfinder_graph
open Expfinder_pattern

let walt = 0
let bob = 1
let bill = 2
let jean = 3
let dan = 4
let mat = 5
let pat = 6
let fred = 7
let eva = 8

let names = [| "Walt"; "Bob"; "Bill"; "Jean"; "Dan"; "Mat"; "Pat"; "Fred"; "Eva" |]

let name_of v =
  if v < 0 || v >= Array.length names then invalid_arg "Collab.name_of";
  names.(v)

let person name label specialty exp =
  ( Label.of_string label,
    Attrs.of_list [ Attrs.str "name" name; Attrs.str "specialty" specialty; Attrs.int "exp" exp ]
  )

let node_table =
  [|
    person "Walt" "SA" "System Architect" 5;
    person "Bob" "SA" "System Architect" 7;
    person "Bill" "GD" "Graphic Designer" 2;
    person "Jean" "BA" "Business Analyst" 3;
    person "Dan" "SD" "Programmer" 3;
    person "Mat" "SD" "Programmer" 4;
    person "Pat" "SD" "DBA" 3;
    person "Fred" "SD" "DBA" 2;
    person "Eva" "ST" "Tester" 2;
  |]

(* Collaboration edges (excluding e1), engineered so that:
   Bob's 2-ball holds SDs {Dan, Pat}, his shortest path to Jean is
   Bob->Dan->Pat->Jean (length 3); Walt's SD witness is Mat at distance 2
   via Bill both ways; Fred reaches ST and BA people but no SA. *)
let edge_table =
  [
    (bob, dan);
    (dan, bob);
    (dan, pat);
    (pat, dan);
    (pat, jean);
    (pat, eva);
    (walt, bill);
    (bill, walt);
    (bill, mat);
    (mat, bill);
    (mat, jean);
    (eva, jean);
    (fred, eva);
    (fred, jean);
  ]

let e1 = (fred, bill)

let graph () =
  let g = Digraph.create ~capacity:(Array.length node_table) () in
  Array.iter (fun (label, attrs) -> ignore (Digraph.add_node g ~attrs label : int)) node_table;
  List.iter (fun (u, v) -> ignore (Digraph.add_edge g u v : bool)) edge_table;
  g

let spec name label pred =
  { Pattern.name; label = Some (Label.of_string label); pred }

let query () =
  Pattern.make_exn
    ~nodes:
      [|
        spec "SA" "SA" (Predicate.ge_int "exp" 5);
        spec "SD" "SD" (Predicate.ge_int "exp" 2);
        spec "BA" "BA" (Predicate.ge_int "exp" 3);
        spec "ST" "ST" (Predicate.ge_int "exp" 2);
      |]
    ~edges:
      [
        (0, 1, Pattern.Bounded 2);
        (1, 0, Pattern.Bounded 2);
        (0, 2, Pattern.Bounded 3);
        (3, 2, Pattern.Bounded 1);
      ]
    ~output:0

let q1 () =
  (* Plain simulation: direct collaborations only. *)
  Pattern.make_exn
    ~nodes:
      [|
        spec "SA" "SA" (Predicate.ge_int "exp" 5);
        spec "SD" "SD" (Predicate.ge_int "exp" 2);
      |]
    ~edges:[ (0, 1, Pattern.Bounded 1); (1, 0, Pattern.Bounded 1) ]
    ~output:0

let q2 () =
  (* SA leading both an SD and a tester vetted by a business analyst. *)
  Pattern.make_exn
    ~nodes:
      [|
        spec "SA" "SA" (Predicate.ge_int "exp" 5);
        spec "SD" "SD" (Predicate.ge_int "exp" 3);
        spec "ST" "ST" Predicate.always;
        spec "BA" "BA" Predicate.always;
      |]
    ~edges:
      [
        (0, 1, Pattern.Bounded 2);
        (0, 2, Pattern.Bounded 3);
        (2, 3, Pattern.Bounded 1);
      ]
    ~output:0

let q3 () =
  (* Unbounded collaboration chains. *)
  Pattern.make_exn
    ~nodes:
      [|
        spec "SA" "SA" (Predicate.ge_int "exp" 5);
        spec "SD" "SD" (Predicate.ge_int "exp" 2);
        spec "BA" "BA" Predicate.always;
      |]
    ~edges:
      [
        (0, 1, Pattern.Bounded 2);
        (1, 0, Pattern.Unbounded);
        (0, 2, Pattern.Unbounded);
      ]
    ~output:0
