open Expfinder_graph
open Expfinder_pattern

(** Query workloads over generated graphs. *)

val distinct_labels : Digraph.t -> Label.t array
(** The label universe actually present in a graph (sorted by symbol). *)

val atom_universe : Predicate.atom list
(** The predicate atoms used by generated workloads ([exp >= 2/3/5]) —
    pass this to the compression module so generated queries stay inside
    the preserved class. *)

val workload :
  Prng.t -> ?nodes:int -> ?max_bound:int -> ?count:int -> simulation:bool -> Digraph.t -> Pattern.t list
(** [count] (default 10) patterns over the graph's own labels, with
    conditions drawn from {!atom_universe}'s thresholds; [simulation]
    forces all bounds to 1. *)
