open Expfinder_graph
open Expfinder_pattern

(** The paper's running example: the Fig. 1 collaboration network and
    pattern queries.

    The published figure is not machine-readable, so the graph is
    reconstructed here to satisfy {e every} fact stated in the text:

    - Example 1: M(Q,G) = {(SA,Bob), (SA,Walt), (BA,Jean), (SD,Mat),
      (SD,Dan), (SD,Pat), (ST,Eva)};
    - the SA→BA pattern edge is witnessed by a length-3 path from Bob to
      Jean;
    - Example 2: f(SA,Bob) = (1+1+2+3+2)/5 = 9/5 and
      f(SA,Walt) = (2+2+3)/3 = 7/3, so Bob is the top-1 SA;
    - Example 3: inserting edge [e1] yields exactly ΔM = {(SD,Fred)};
    - Fred and Pat are both DBAs collaborating with ST and BA people.

    Pattern bounds are the figure's {2, 2, 3, 1}: SA→SD (2), SD→SA (2),
    SA→BA (3), ST→BA (1). *)

val graph : unit -> Digraph.t
(** Fresh copy of the 9-person collaboration network (without [e1]). *)

val e1 : int * int
(** The edge of Example 3 ([Fred -> Bill]); inserting it gives Fred a
    system architect within 2 hops. *)

val query : unit -> Pattern.t
(** The pattern query Q of Fig. 1(a); output node SA. *)

(* Node ids, for tests and examples. *)

val walt : int
val bob : int
val bill : int
val jean : int
val dan : int
val mat : int
val pat : int
val fred : int
val eva : int

val name_of : int -> string
(** Person name of a node id.  @raise Invalid_argument on unknown id. *)

val q1 : unit -> Pattern.t
(** Fig. 4's Q1: a plain-simulation variant of Q (all bounds 1 — matches
    direct collaborations only). *)

val q2 : unit -> Pattern.t
(** Fig. 4's Q2: different topology — SA leading SD and ST teams, with
    the ST vetted by a BA. *)

val q3 : unit -> Pattern.t
(** Fig. 4's Q3: an unbounded-edge variant (SA connected to BA via any
    collaboration chain). *)
