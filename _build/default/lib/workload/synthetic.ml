open Expfinder_graph

let fields = [| "SA"; "SD"; "BA"; "ST"; "PM"; "QA"; "DBA"; "UX" |]

let field_labels () = Array.map Label.of_string fields

let flat rng ~n ~avg_degree =
  let labels = field_labels () in
  Generators.erdos_renyi rng ~n ~m:(n * avg_degree) (fun _ ->
      (Prng.choose rng labels, Attrs.of_list [ Attrs.int "exp" (Prng.int rng 11) ]))

(* Workers draw experience from seniority buckets so that team-mates of
   the same role and bucket are bisimilar (they all point to the same
   manager); a tunable fraction of workers carries one extra cross-team
   collaboration edge, which breaks some of the symmetry.  At the default
   [cross_p = 0.5] the coarsest bisimulation removes ~57% of the nodes —
   the average reduction the paper reports for its datasets. *)
let org ?(cross_p = 0.5) rng ~teams ~team_size =
  if teams < 1 || team_size < 1 then invalid_arg "Synthetic.org";
  let g = Digraph.create ~capacity:(teams * (team_size + 1)) () in
  let roles = [| "SD"; "QA"; "DBA"; "UX" |] in
  let buckets = [| 2; 5; 8 |] in
  let director_count = (teams + 15) / 16 in
  let directors =
    Array.init director_count (fun i ->
        Digraph.add_node g
          ~attrs:(Attrs.of_list [ Attrs.int "exp" 10; Attrs.str "name" (Printf.sprintf "dir%d" i) ])
          (Label.of_string "SA"))
  in
  let workers = Vec.create ~dummy:(-1) () in
  for t = 0 to teams - 1 do
    let manager =
      Digraph.add_node g
        ~attrs:(Attrs.of_list [ Attrs.int "exp" (Prng.choose rng buckets) ])
        (Label.of_string "PM")
    in
    let director = directors.(t mod director_count) in
    ignore (Digraph.add_edge g manager director : bool);
    ignore (Digraph.add_edge g director manager : bool);
    for _ = 1 to team_size do
      let role = Prng.choose rng roles in
      let exp = Prng.choose rng buckets in
      let worker =
        Digraph.add_node g ~attrs:(Attrs.of_list [ Attrs.int "exp" exp ]) (Label.of_string role)
      in
      ignore (Digraph.add_edge g worker manager : bool);
      Vec.push workers worker
    done
  done;
  let worker_array = Vec.to_array workers in
  Array.iter
    (fun w ->
      if Prng.float rng 1.0 < cross_p then begin
        let x = worker_array.(Prng.int rng (Array.length worker_array)) in
        if x <> w then ignore (Digraph.add_edge g w x : bool)
      end)
    worker_array;
  g

let exp_of g v =
  match Attrs.find (Digraph.attrs g v) "exp" with Some (Attr.Int e) -> e | _ -> 0
