open Expfinder_graph

(** Twitter-fraction substitute (§III: "we use a fraction of Twitter").

    The real trace is not available in this environment, so the module
    generates a scale-free follower graph with the properties the
    experiments rely on: power-law in-degrees (preferential attachment),
    a small set of professional-interest labels, and follower-count /
    experience attributes correlated with popularity.  Seeded generation
    makes every experiment reproducible. *)

val interests : string array
(** Label alphabet: ML, DB, Sys, Sec, UX, PL. *)

val interest_labels : unit -> Label.t array

val generate : Prng.t -> n:int -> Digraph.t
(** [n]-user follower graph: active users follow ~4 earlier users chosen
    preferentially; about half of the users are lurkers following a
    single popular account (the compressible fringe real follower graphs
    have).  Attributes: ["exp"] in [0..10] (skewed up for popular
    accounts), ["followers"] filled in post hoc, ["name"] = ["user<i>"]. *)
