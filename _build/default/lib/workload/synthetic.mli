open Expfinder_graph

(** Synthetic data graphs (§III "we design a synthetic graph generator to
    generate arbitrarily large graphs").

    Two families:

    - {!flat}: Erdős–Rényi-style collaboration graphs with a small label
      alphabet of professional fields and integer experience attributes.
      Used by the query-scaling and incremental experiments.
    - {!org}: organisational networks — teams of role-labelled workers
      around managers, managers reporting to directors.  Team members of
      the same role and seniority bucket are behaviourally identical, so
      these graphs carry the heavy structural redundancy that the
      compression experiments rely on (the paper reports 57% average
      reduction on its datasets). *)

val fields : string array
(** The label alphabet: SA, SD, BA, ST, PM, QA, DBA, UX. *)

val field_labels : unit -> Label.t array

val flat : Prng.t -> n:int -> avg_degree:int -> Digraph.t
(** Random collaboration graph: [n] nodes, [n * avg_degree] edges,
    uniform field labels, [exp] uniform in [0..10]. *)

val org : ?cross_p:float -> Prng.t -> teams:int -> team_size:int -> Digraph.t
(** Organisational graph: [teams] managers (PM), each with [team_size]
    workers of random roles and seniority buckets; workers point to their
    manager, managers and one of a few directors (SA) point to each
    other, and each worker carries one extra cross-team collaboration
    edge with probability [cross_p] (default 0.5, which lands the
    bisimulation compression at the paper's ~57%).  Node count is
    [teams * (team_size + 1) + ceil(teams/16)]. *)

val exp_of : Digraph.t -> int -> int
(** The [exp] attribute of a node (0 when missing). *)
