open Expfinder_graph
open Expfinder_pattern
open Expfinder_incremental

type t = {
  atoms : Predicate.atom list;
  mutable csr : Csr.t;
  mutable partition : int array;
  mutable compress : Compress.t;
}

type report = {
  effective : int;
  area : int;
  blocks_before : int;
  blocks_after : int;
}

let key_of = Compress.signature_key

let create ?(atoms = []) g =
  let csr = Csr.of_digraph g in
  let partition = Bisimulation.compute csr ~key:(key_of atoms csr) in
  { atoms; csr; partition; compress = Compress.of_partition ~atoms csr partition }

let current t = t.compress

let snapshot t = t.csr

let rebuild t g =
  t.csr <- Csr.of_digraph g;
  t.partition <- Bisimulation.compute t.csr ~key:(key_of t.atoms t.csr);
  t.compress <- Compress.of_partition ~atoms:t.atoms t.csr t.partition

let sync t ~new_csr ~effective updates =
  let old_csr = t.csr in
  let old_n = Csr.node_count old_csr in
  let blocks_before = Bisimulation.block_count t.partition in
  let new_n = Csr.node_count new_csr in
  let seeds = Update.touched_sources updates in
  let area = Bitset.create new_n in
  let old_seeds = List.filter (fun v -> v < old_n) seeds in
  if old_seeds <> [] then
    Traversal.bfs_rev old_csr old_seeds (fun v _ -> Bitset.add area v);
  let new_seeds = List.filter (fun v -> v < new_n) seeds in
  if new_seeds <> [] then
    Traversal.bfs_rev new_csr new_seeds (fun v _ -> Bitset.add area v);
  for v = old_n to new_n - 1 do
    Bitset.add area v
  done;
  (* Local re-refinement pays off while the affected area is a minority
     of the graph; beyond that a fresh coarsest partition is both faster
     and optimal, so fall back (this also resets any accumulated
     drift). *)
  let partition =
    if 2 * Bitset.cardinal area > new_n then
      Bisimulation.compute new_csr ~key:(key_of t.atoms new_csr)
    else
      Bisimulation.refine_local new_csr ~key:(key_of t.atoms new_csr) ~prev:t.partition
        ~area
  in
  t.csr <- new_csr;
  t.partition <- partition;
  t.compress <- Compress.of_partition ~atoms:t.atoms new_csr partition;
  {
    effective;
    area = Bitset.cardinal area;
    blocks_before;
    blocks_after = Bisimulation.block_count partition;
  }

let apply_updates t g updates =
  if Digraph.version g <> Csr.source_version t.csr then
    invalid_arg "Inc_compress.apply_updates: digraph out of sync with tracked snapshot";
  let effective = Update.apply_batch g updates in
  sync t ~new_csr:(Csr.of_digraph g) ~effective updates

let fresh_block_count t =
  Bisimulation.block_count (Bisimulation.compute t.csr ~key:(key_of t.atoms t.csr))
