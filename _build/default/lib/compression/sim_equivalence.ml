open Expfinder_graph

(* sim.(u) = { v | v simulates u }: greatest relation with
   key(u) = key(v) and every successor of u simulated by a successor of
   v.  Computed by sweep-to-fixpoint; fine for the mid-sized graphs the
   ablation uses. *)
let preorder g ~key =
  let n = Csr.node_count g in
  let sim = Array.init (max n 1) (fun _ -> Bitset.create n) in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if key u = key v then Bitset.add sim.(u) v
    done
  done;
  let changed = ref true in
  while !changed do
    changed := false;
    for u = 0 to n - 1 do
      let victims = ref [] in
      Bitset.iter
        (fun v ->
          let ok =
            not
              (Csr.exists_succ g u (fun u' ->
                   not (Csr.exists_succ g v (fun v' -> Bitset.mem sim.(u') v'))))
          in
          if not ok then victims := v :: !victims)
        sim.(u);
      if !victims <> [] then begin
        changed := true;
        List.iter (fun v -> Bitset.remove sim.(u) v) !victims
      end
    done
  done;
  sim

let compute g ~key =
  let n = Csr.node_count g in
  let sim = preorder g ~key in
  let block_of = Array.make (max n 1) (-1) in
  let count = ref 0 in
  for u = 0 to n - 1 do
    if block_of.(u) < 0 then begin
      block_of.(u) <- !count;
      (* Mutual simulation is an equivalence: group u with every v that
         simulates it and is simulated by it. *)
      Bitset.iter
        (fun v -> if v > u && Bitset.mem sim.(v) u && block_of.(v) < 0 then block_of.(v) <- !count)
        sim.(u);
      incr count
    end
  done;
  block_of
