open Expfinder_graph

(* Successor-block signature of a node: its own block plus the sorted,
   deduplicated set of its successors' blocks. *)
let signature g block_of v =
  let succs = Csr.fold_succ g v (fun acc w -> block_of.(w) :: acc) [] in
  let succs = List.sort_uniq compare succs in
  (block_of.(v), succs)

module Sig_table = Hashtbl.Make (struct
  type t = int * int list

  let equal (b1, s1) (b2, s2) = b1 = b2 && List.equal Int.equal s1 s2

  let hash = Hashtbl.hash
end)

let compute g ~key =
  let n = Csr.node_count g in
  let block_of = Array.make (max n 1) 0 in
  (* Initial partition: intern the key. *)
  let key_ids = Hashtbl.create 64 in
  let nblocks = ref 0 in
  for v = 0 to n - 1 do
    let k = key v in
    match Hashtbl.find_opt key_ids k with
    | Some id -> block_of.(v) <- id
    | None ->
      Hashtbl.add key_ids k !nblocks;
      block_of.(v) <- !nblocks;
      incr nblocks
  done;
  (* Signature refinement to the fixpoint: each pass re-keys every node by
     (block, successor blocks); the block count is strictly increasing, so
     at most n passes. *)
  let changed = ref true in
  while !changed do
    let table = Sig_table.create (2 * !nblocks) in
    let next = Array.make (max n 1) 0 in
    let count = ref 0 in
    for v = 0 to n - 1 do
      let s = signature g block_of v in
      match Sig_table.find_opt table s with
      | Some id -> next.(v) <- id
      | None ->
        Sig_table.add table s !count;
        next.(v) <- !count;
        incr count
    done;
    changed := !count <> !nblocks;
    nblocks := !count;
    Array.blit next 0 block_of 0 n
  done;
  block_of

let normalise block_of =
  let remap = Hashtbl.create 64 in
  let count = ref 0 in
  Array.map
    (fun b ->
      match Hashtbl.find_opt remap b with
      | Some id -> id
      | None ->
        Hashtbl.add remap b !count;
        incr count;
        !count - 1)
    block_of

let refine_local g ~key ~prev ~area =
  let n = Csr.node_count g in
  let block_of = Array.make (max n 1) 0 in
  let frozen_max = Array.fold_left max 0 (if Array.length prev = 0 then [| 0 |] else prev) in
  (* Frozen nodes keep their block; area nodes are re-keyed into a fresh
     id space so they never collide with frozen blocks. *)
  let next_id = ref (frozen_max + 1) in
  let key_ids = Hashtbl.create 64 in
  for v = 0 to n - 1 do
    if Bitset.mem area v then begin
      let k = key v in
      match Hashtbl.find_opt key_ids k with
      | Some id -> block_of.(v) <- id
      | None ->
        Hashtbl.add key_ids k !next_id;
        block_of.(v) <- !next_id;
        incr next_id
    end
    else block_of.(v) <- (if v < Array.length prev then prev.(v) else 0)
  done;
  let area_blocks = ref (Hashtbl.length key_ids) in
  let changed = ref true in
  while !changed do
    let table = Sig_table.create 64 in
    let updates = ref [] in
    let count = ref 0 in
    Bitset.iter
      (fun v ->
        let s = signature g block_of v in
        let id =
          match Sig_table.find_opt table s with
          | Some id -> id
          | None ->
            let id = !next_id + !count in
            Sig_table.add table s id;
            incr count;
            id
        in
        updates := (v, id) :: !updates)
      area;
    changed := !count <> !area_blocks;
    area_blocks := !count;
    next_id := !next_id + !count;
    List.iter (fun (v, id) -> block_of.(v) <- id) !updates
  done;
  normalise block_of

let block_count block_of = Array.fold_left max (-1) block_of + 1

let is_stable g ~key block_of =
  let n = Csr.node_count g in
  let reps = Hashtbl.create 64 in
  let ok = ref true in
  for v = 0 to n - 1 do
    let s = (key v, signature g block_of v) in
    match Hashtbl.find_opt reps block_of.(v) with
    | None -> Hashtbl.add reps block_of.(v) s
    | Some s' -> if s <> s' then ok := false
  done;
  !ok
