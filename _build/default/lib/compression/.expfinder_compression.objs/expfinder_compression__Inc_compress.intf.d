lib/compression/inc_compress.mli: Compress Csr Digraph Expfinder_graph Expfinder_incremental Expfinder_pattern Predicate Update
