lib/compression/compress.ml: Array Attr Bisimulation Bounded_sim Csr Digraph Expfinder_core Expfinder_graph Expfinder_pattern Label List Match_relation Pattern Predicate Simulation String
