lib/compression/sim_equivalence.mli: Bitset Csr Expfinder_graph
