lib/compression/compress.mli: Csr Expfinder_core Expfinder_graph Expfinder_pattern Match_relation Pattern Predicate
