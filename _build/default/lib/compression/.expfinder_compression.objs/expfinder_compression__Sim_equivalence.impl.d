lib/compression/sim_equivalence.ml: Array Bitset Csr Expfinder_graph List
