lib/compression/compress_io.mli: Compress Csr Expfinder_graph
