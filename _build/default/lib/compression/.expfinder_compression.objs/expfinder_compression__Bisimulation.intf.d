lib/compression/bisimulation.mli: Bitset Csr Expfinder_graph
