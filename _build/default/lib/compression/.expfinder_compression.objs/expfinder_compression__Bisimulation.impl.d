lib/compression/bisimulation.ml: Array Bitset Csr Expfinder_graph Hashtbl Int List
