lib/compression/compress_io.ml: Array Bisimulation Buffer Compress Csr Expfinder_graph Expfinder_pattern Fun In_channel List Pattern_io Printf String
