lib/compression/inc_compress.ml: Bisimulation Bitset Compress Csr Digraph Expfinder_graph Expfinder_incremental Expfinder_pattern List Predicate Traversal Update
