open Expfinder_graph

(** Coarsest key-respecting bisimulation partition.

    Kanellakis–Smolka style refinement: start from blocks given by an
    initial key (label + predicate signature), then repeatedly split any
    block whose members disagree on "has a successor in block S" until
    the partition is stable.  Stable + key-respecting = a bisimulation;
    since we only split when forced, the result is the coarsest one.

    Worst case O(n·m); each pass is O(n+m) and real social graphs
    stabilise in a handful of passes. *)

val compute : Csr.t -> key:(int -> int) -> int array
(** [compute g ~key] returns [block_of], mapping each node to a dense
    block id in [0 .. max+1).  Nodes with different [key] values are
    never merged. *)

val refine_local : Csr.t -> key:(int -> int) -> prev:int array -> area:Bitset.t -> int array
(** Locally re-refine after an update: nodes outside [area] keep their
    [prev] block (and are guaranteed not to have successors inside
    [area] — the caller's affected-area invariant); [area] nodes are
    re-keyed and refined against the frozen blocks and each other.  The
    result is a valid bisimulation partition, possibly finer than the
    coarsest one (area nodes never re-merge into frozen blocks).  Block
    ids are re-normalised to a dense range. *)

val is_stable : Csr.t -> key:(int -> int) -> int array -> bool
(** Test (for property tests): the partition respects [key] and is
    stable — any two nodes in one block have successors in exactly the
    same set of blocks. *)

val block_count : int array -> int
(** Number of distinct blocks ([max + 1]; blocks are dense). *)
