open Expfinder_graph

(** Simulation-equivalence partitioning (the more aggressive merging of
    the SIGMOD 2012 paper, ablation EXP-A2).

    Two nodes are merged when they simulate {e each other} (w.r.t. label
    and atom-signature keys).  This is coarser than bisimulation —
    simulation equivalence ignores branching structure — so it
    compresses more, but it only preserves {e plain simulation} queries:
    bounded queries need exact path lengths, which simulation-equivalent
    merging does not maintain.

    The preorder is computed with the HHK refinement applied to G
    against itself; the O(n²)-bit similarity matrix confines this scheme
    to mid-sized graphs, which is also how the ablation uses it. *)

val compute : Csr.t -> key:(int -> int) -> int array
(** Partition of the nodes into mutual-simulation classes (dense block
    ids).  Nodes with different keys are never merged. *)

val preorder : Csr.t -> key:(int -> int) -> Bitset.t array
(** The full similarity relation: [(preorder g).(u)] is the set of nodes
    that simulate [u].  Exposed for tests. *)
