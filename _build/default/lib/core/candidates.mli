open Expfinder_graph
open Expfinder_pattern

(** Candidate-set construction.

    The starting point of every matching algorithm: for each pattern node
    [u], the set of data nodes whose label and attributes satisfy [u]'s
    search conditions (condition (2)(a) of the bounded-simulation
    definition).  Uses the snapshot's label index when the pattern node
    has a concrete label. *)

val compute : Pattern.t -> Csr.t -> Match_relation.t
(** The full candidate relation (not yet refined by edge constraints). *)

val compute_for_nodes : Pattern.t -> Csr.t -> Bitset.t -> Match_relation.t
(** Candidates restricted to data nodes in the given set; other nodes are
    left out regardless of their labels (used by incremental matching to
    limit recomputation to an affected area). *)
