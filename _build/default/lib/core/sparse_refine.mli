open Expfinder_graph
open Expfinder_pattern

(** Area-restricted greatest-fixpoint refinement, generic over the graph
    representation.

    Used by incremental maintenance: only pairs on nodes of [area] may be
    removed; everything else is frozen and trusted.  Counters exist only
    for area nodes, so the cost is proportional to the area (and, for
    bounded patterns, to the dependency balls of its nodes), never to
    |G|.  Batch evaluation keeps its dense engines in {!Simulation} and
    {!Bounded_sim}. *)

module Make (G : Graph_intf.GRAPH) : sig
  val simulation :
    Pattern.t -> G.t -> initial:Match_relation.t -> area:Bitset.t -> Match_relation.t
  (** Simulation constraints (bounds ignored; caller dispatches). *)

  val bounded :
    Pattern.t -> G.t -> initial:Match_relation.t -> area:Bitset.t -> Match_relation.t
  (** Bounded-simulation constraints via per-pair ball counters.
      @raise Invalid_argument on a pattern with unbounded edges (callers
      fall back to recomputation for those). *)
end
