(** Social-impact ranking and top-K selection (§II Results Ranking).

    The rank of a match [v] of the output node is the average distance
    between [v] and the other result-graph nodes connected to it:

    {v f(u_o, v) = (Σ_u dist(u,v) + Σ_u' dist(v,u')) / |V'_r| v}

    where the sums range over nodes that reach [v] / are reached from [v]
    in Gr, and [|V'_r|] counts a node once {e per direction} of
    connectivity (ancestors + descendants): the paper's worked values
    — f(SA,Bob) = (1+1+2+3+2)/5 with only four distinct neighbours, and
    f(SA,Walt) = (2+2+3)/3 — force this reading.  Smaller is better
    (stronger social impact).  Ranks are exact rationals so the paper's
    values (9/5, 7/3) are testable without float noise. *)

type rank = { num : int; den : int }
(** [den = 0] encodes +∞ (a match with no social context). *)

val rank_to_float : rank -> float

val compare_rank : rank -> rank -> int
(** Total order: finite ranks by value, +∞ last. *)

val pp_rank : Format.formatter -> rank -> unit
(** [9/5 (1.80)] style. *)

val rank_of : Result_graph.t -> int -> rank
(** [rank_of gr v] for a data node [v] of the result graph.
    @raise Invalid_argument when [v] is not in Gr. *)

val top_k : Result_graph.t -> output_matches:int list -> k:int -> (int * rank) list
(** The [k] matches with minimum rank (all of them when [k] exceeds the
    match count), sorted by ascending rank, ties broken by node id. *)
