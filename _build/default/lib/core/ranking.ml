open Expfinder_graph

type rank = { num : int; den : int }

let rank_to_float r = if r.den = 0 then infinity else float_of_int r.num /. float_of_int r.den

let compare_rank a b =
  match (a.den, b.den) with
  | 0, 0 -> 0
  | 0, _ -> 1
  | _, 0 -> -1
  | _ -> compare (a.num * b.den) (b.num * a.den)

let pp_rank ppf r =
  if r.den = 0 then Format.pp_print_string ppf "inf"
  else Format.fprintf ppf "%d/%d (%.2f)" r.num r.den (rank_to_float r)

let rank_of gr v =
  match Result_graph.index_of gr v with
  | None -> invalid_arg "Ranking.rank_of: node not in result graph"
  | Some i ->
    let wg = Result_graph.wgraph gr in
    let from_v = Wgraph.dijkstra wg i in
    let to_v = Wgraph.dijkstra_rev wg i in
    (* The denominator counts a node once per direction of connectivity:
       the paper's own worked values (f(SA,Bob) = (1+1+2+3+2)/5 with only
       four distinct neighbours) force this reading of |V'_r|. *)
    let num = ref 0 and connected = ref 0 in
    for j = 0 to Result_graph.node_count gr - 1 do
      if j <> i then begin
        if to_v.(j) >= 0 then begin
          num := !num + to_v.(j);
          incr connected
        end;
        if from_v.(j) >= 0 then begin
          num := !num + from_v.(j);
          incr connected
        end
      end
    done;
    { num = !num; den = !connected }

let top_k gr ~output_matches ~k =
  if k < 0 then invalid_arg "Ranking.top_k";
  let ranked = List.map (fun v -> (v, rank_of gr v)) output_matches in
  let sorted =
    List.sort
      (fun (v1, r1) (v2, r2) ->
        let c = compare_rank r1 r2 in
        if c <> 0 then c else compare v1 v2)
      ranked
  in
  List.filteri (fun i _ -> i < k) sorted
