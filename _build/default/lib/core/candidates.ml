open Expfinder_graph
open Expfinder_pattern

let compute pattern g =
  let m =
    Match_relation.create ~pattern_size:(Pattern.size pattern)
      ~graph_size:(Csr.node_count g)
  in
  for u = 0 to Pattern.size pattern - 1 do
    let spec = Pattern.node_spec pattern u in
    let consider v =
      if Predicate.eval spec.Pattern.pred (Csr.attrs g v) then Match_relation.add m u v
    in
    match spec.Pattern.label with
    | Some l -> List.iter consider (Csr.nodes_with_label g l)
    | None -> Csr.iter_nodes g consider
  done;
  m

let compute_for_nodes pattern g area =
  let m =
    Match_relation.create ~pattern_size:(Pattern.size pattern)
      ~graph_size:(Csr.node_count g)
  in
  for u = 0 to Pattern.size pattern - 1 do
    Bitset.iter
      (fun v ->
        if Pattern.matches_node pattern u (Csr.label g v) (Csr.attrs g v) then
          Match_relation.add m u v)
      area
  done;
  m
