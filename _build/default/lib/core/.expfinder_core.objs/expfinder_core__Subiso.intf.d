lib/core/subiso.mli: Csr Expfinder_graph Expfinder_pattern Pattern
