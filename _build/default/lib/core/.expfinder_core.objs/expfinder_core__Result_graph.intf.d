lib/core/result_graph.mli: Csr Expfinder_graph Expfinder_pattern Format Match_relation Pattern Wgraph
