lib/core/sparse_refine.ml: Array Bitset Distance Expfinder_graph Expfinder_pattern Graph_intf Hashtbl List Match_relation Option Pattern Vec
