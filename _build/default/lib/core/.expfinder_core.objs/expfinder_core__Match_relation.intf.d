lib/core/match_relation.mli: Bitset Expfinder_graph Expfinder_pattern Format Pattern
