lib/core/result_graph.ml: Array Attr Attrs Bitset Buffer Csr Distance Expfinder_graph Expfinder_pattern Format Hashtbl Label List Match_relation Pattern Printf String Vec Wgraph
