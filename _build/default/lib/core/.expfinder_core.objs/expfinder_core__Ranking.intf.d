lib/core/ranking.mli: Format Result_graph
