lib/core/bounded_sim.mli: Bitset Csr Expfinder_graph Expfinder_pattern Match_relation Pattern
