lib/core/ball_index.ml: Array Bitset Candidates Csr Distance Expfinder_graph Expfinder_pattern List Match_relation Pattern Vec
