lib/core/planner.mli: Bounded_sim Csr Expfinder_graph Expfinder_pattern Match_relation Pattern
