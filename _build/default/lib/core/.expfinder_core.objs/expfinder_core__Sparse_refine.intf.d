lib/core/sparse_refine.mli: Bitset Expfinder_graph Expfinder_pattern Graph_intf Match_relation Pattern
