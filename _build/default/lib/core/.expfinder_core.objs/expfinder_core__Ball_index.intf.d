lib/core/ball_index.mli: Csr Expfinder_graph Expfinder_pattern Match_relation Pattern
