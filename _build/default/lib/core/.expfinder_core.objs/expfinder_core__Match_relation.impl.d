lib/core/match_relation.ml: Array Bitset Expfinder_graph Expfinder_pattern Format List Pattern
