lib/core/bounded_sim.ml: Array Bitset Candidates Csr Distance Expfinder_graph Expfinder_pattern List Match_relation Pattern Reach Vec
