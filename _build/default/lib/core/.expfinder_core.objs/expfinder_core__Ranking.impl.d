lib/core/ranking.ml: Array Expfinder_graph Format List Result_graph Wgraph
