lib/core/simulation.ml: Array Bitset Candidates Csr Expfinder_graph Expfinder_pattern List Match_relation Pattern Sparse_refine Vec
