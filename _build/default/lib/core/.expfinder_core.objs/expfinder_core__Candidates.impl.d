lib/core/candidates.ml: Bitset Csr Expfinder_graph Expfinder_pattern List Match_relation Pattern Predicate
