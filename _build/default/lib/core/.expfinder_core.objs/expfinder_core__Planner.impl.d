lib/core/planner.ml: Array Bounded_sim Buffer Csr Expfinder_graph Expfinder_pattern Fun List Match_relation Pattern Predicate Printf Simulation
