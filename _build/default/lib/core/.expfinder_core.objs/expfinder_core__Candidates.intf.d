lib/core/candidates.mli: Bitset Csr Expfinder_graph Expfinder_pattern Match_relation Pattern
