lib/core/subiso.ml: Array Csr Expfinder_graph Expfinder_pattern Fun Hashtbl List Pattern Predicate
