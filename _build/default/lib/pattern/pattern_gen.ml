open Expfinder_graph

type config = {
  nodes : int;
  extra_edges : int;
  max_bound : int;
  unbounded_prob : float;
  condition_prob : float;
  condition_attr : string;
  condition_range : int * int;
}

let default =
  {
    nodes = 4;
    extra_edges = 1;
    max_bound = 3;
    unbounded_prob = 0.0;
    condition_prob = 0.5;
    condition_attr = "exp";
    condition_range = (0, 5);
  }

let simulation_config c = { c with max_bound = 1; unbounded_prob = 0.0 }

let random_bound rng c =
  if c.unbounded_prob > 0.0 && Prng.float rng 1.0 < c.unbounded_prob then
    Pattern.Unbounded
  else Pattern.Bounded (Prng.int_in rng 1 c.max_bound)

let generate rng c ~labels =
  if Array.length labels = 0 then invalid_arg "Pattern_gen.generate: no labels";
  if c.nodes < 1 || c.max_bound < 1 then invalid_arg "Pattern_gen.generate: bad config";
  let lo, hi = c.condition_range in
  let node u =
    let label = Prng.choose rng labels in
    let pred =
      if Prng.float rng 1.0 < c.condition_prob then
        Predicate.ge_int c.condition_attr (Prng.int_in rng lo hi)
      else Predicate.always
    in
    { Pattern.name = Printf.sprintf "%s%d" (Label.to_string label) u; label = Some label; pred }
  in
  let nodes = Array.init c.nodes node in
  (* Spanning arborescence from node 0: node u > 0 gets one incoming edge
     from a random earlier node, so the output node reaches everyone. *)
  let edge_set = Hashtbl.create 16 in
  let edges = ref [] in
  let add u v =
    if u <> v && not (Hashtbl.mem edge_set (u, v)) then begin
      Hashtbl.add edge_set (u, v) ();
      edges := (u, v, random_bound rng c) :: !edges;
      true
    end
    else false
  in
  for u = 1 to c.nodes - 1 do
    ignore (add (Prng.int rng u) u : bool)
  done;
  let placed = ref 0 in
  let attempts = ref 0 in
  let max_extra = (c.nodes * (c.nodes - 1)) - (c.nodes - 1) in
  let wanted = min c.extra_edges max_extra in
  while !placed < wanted && !attempts < 100 * (wanted + 1) do
    incr attempts;
    let u = Prng.int rng c.nodes and v = Prng.int rng c.nodes in
    if add u v then incr placed
  done;
  Pattern.make_exn ~nodes ~edges:!edges ~output:0

let generate_many rng c ~labels count = List.init count (fun _ -> generate rng c ~labels)
