open Expfinder_graph

(** Search conditions on pattern nodes.

    A predicate is a conjunction of atomic comparisons over node
    attributes, e.g. [experience >= 5 && specialty = "DBA"] — the
    "search conditions" of §II.  A comparison over a missing attribute or
    an attribute of a different runtime type evaluates to [false] (never
    to an error), so malformed data simply fails to match. *)

type op = Eq | Ne | Lt | Le | Gt | Ge

type atom = { attr : string; op : op; value : Attr.t }

type t

val always : t
(** The empty conjunction: holds on every node. *)

val of_atoms : atom list -> t

val atoms : t -> atom list

val conj : t -> t -> t

val atom : string -> op -> Attr.t -> t
(** Single-comparison predicate. *)

(* Sugar for the common cases. *)

val eq_str : string -> string -> t
val eq_int : string -> int -> t
val ge_int : string -> int -> t
val le_int : string -> int -> t
val gt_int : string -> int -> t
val lt_int : string -> int -> t

val eval : t -> Attrs.t -> bool

val is_always : t -> bool

val equal : t -> t -> bool

val op_to_string : op -> string
(** ["="], ["!="], ["<"], ["<="], [">"], [">="]. *)

val op_of_string : string -> op option

val pp : Format.formatter -> t -> unit
(** [exp>=5 && specialty=DBA]; [true] for the empty conjunction. *)
