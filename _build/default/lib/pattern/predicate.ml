open Expfinder_graph

type op = Eq | Ne | Lt | Le | Gt | Ge

type atom = { attr : string; op : op; value : Attr.t }

type t = atom list

let always = []

let of_atoms atoms = atoms

let atoms t = t

let conj a b = a @ b

let atom attr op value = [ { attr; op; value } ]

let eq_str attr v = atom attr Eq (Attr.String v)

let eq_int attr v = atom attr Eq (Attr.Int v)

let ge_int attr v = atom attr Ge (Attr.Int v)

let le_int attr v = atom attr Le (Attr.Int v)

let gt_int attr v = atom attr Gt (Attr.Int v)

let lt_int attr v = atom attr Lt (Attr.Int v)

let eval_atom { attr; op; value } attrs =
  match Attrs.find attrs attr with
  | None -> false
  | Some actual -> (
    match Attr.compare_values actual value with
    | None -> false
    | Some c -> (
      match op with
      | Eq -> c = 0
      | Ne -> c <> 0
      | Lt -> c < 0
      | Le -> c <= 0
      | Gt -> c > 0
      | Ge -> c >= 0))

let eval t attrs = List.for_all (fun a -> eval_atom a attrs) t

let is_always t = t = []

let atom_equal a b =
  String.equal a.attr b.attr && a.op = b.op && Attr.equal a.value b.value

let equal a b = List.equal atom_equal a b

let op_to_string = function
  | Eq -> "="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let op_of_string = function
  | "=" -> Some Eq
  | "!=" -> Some Ne
  | "<" -> Some Lt
  | "<=" -> Some Le
  | ">" -> Some Gt
  | ">=" -> Some Ge
  | _ -> None

let pp ppf = function
  | [] -> Format.pp_print_string ppf "true"
  | atoms ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf " && ")
      (fun ppf { attr; op; value } ->
        Format.fprintf ppf "%s%s%a" attr (op_to_string op) Attr.pp value)
      ppf atoms
