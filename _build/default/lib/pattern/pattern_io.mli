(** Text serialisation of pattern queries, and DOT export.

    Format (['#'] comments allowed):

    {v
    expfinder-pattern 1
    node <id> <name> <label|*> [attr<op>typed-value ...]
    edge <src> <dst> <bound|*>
    output <id>
    v}

    e.g. the paper's query Q:

    {v
    expfinder-pattern 1
    node 0 SA SA exp>=int:5
    node 1 SD SD exp>=int:2
    node 2 BA BA exp>=int:3
    node 3 ST ST exp>=int:2
    edge 0 1 2
    edge 1 0 2
    edge 0 2 3
    edge 1 3 2
    edge 3 2 1
    output 0
    v} *)

val to_string : Pattern.t -> string

val of_string : string -> (Pattern.t, string) result

val save : Pattern.t -> string -> unit

val load : string -> (Pattern.t, string) result

val to_dot : ?name:string -> Pattern.t -> string
(** GraphViz rendering; edges are annotated with their bounds and the
    output node is double-circled (mirrors the Pattern Builder display). *)

val condition_to_string : Predicate.atom -> string
(** One search condition in the file syntax, e.g. [exp>=int:5] (also used
    by compressed-graph persistence to record atom universes). *)

val condition_of_string : string -> (Predicate.atom, string) result
