open Expfinder_graph

type pnode = int

type bound = Bounded of int | Unbounded

type node_spec = { name : string; label : Label.t option; pred : Predicate.t }

type t = {
  nodes : node_spec array;
  edge_list : (pnode * pnode * bound) list;
  out_adj : (pnode * bound) list array;
  in_adj : (pnode * bound) list array;
  output : pnode;
}

let make ~nodes ~edges ~output =
  let n = Array.length nodes in
  if n = 0 then Error "pattern must have at least one node"
  else if output < 0 || output >= n then Error "output node out of range"
  else begin
    let seen = Hashtbl.create 8 in
    let rec check = function
      | [] -> Ok ()
      | (u, v, b) :: rest ->
        if u < 0 || u >= n || v < 0 || v >= n then
          Error (Printf.sprintf "edge (%d,%d) out of range" u v)
        else if u = v then Error (Printf.sprintf "self-loop on pattern node %d" u)
        else if Hashtbl.mem seen (u, v) then
          Error (Printf.sprintf "duplicate edge (%d,%d)" u v)
        else begin
          match b with
          | Bounded k when k < 1 -> Error (Printf.sprintf "bound %d on (%d,%d) must be >= 1" k u v)
          | Bounded _ | Unbounded ->
            Hashtbl.add seen (u, v) ();
            check rest
        end
    in
    match check edges with
    | Error _ as e -> e
    | Ok () ->
      let out_adj = Array.make n [] in
      let in_adj = Array.make n [] in
      List.iter
        (fun (u, v, b) ->
          out_adj.(u) <- (v, b) :: out_adj.(u);
          in_adj.(v) <- (u, b) :: in_adj.(v))
        edges;
      Ok { nodes; edge_list = edges; out_adj; in_adj; output }
  end

let make_exn ~nodes ~edges ~output =
  match make ~nodes ~edges ~output with
  | Ok t -> t
  | Error e -> invalid_arg ("Pattern.make: " ^ e)

let size t = Array.length t.nodes

let edge_count t = List.length t.edge_list

let node_spec t u =
  if u < 0 || u >= size t then invalid_arg "Pattern.node_spec";
  t.nodes.(u)

let name t u = (node_spec t u).name

let output t = t.output

let edges t = t.edge_list

let out_edges t u =
  if u < 0 || u >= size t then invalid_arg "Pattern.out_edges";
  t.out_adj.(u)

let in_edges t u =
  if u < 0 || u >= size t then invalid_arg "Pattern.in_edges";
  t.in_adj.(u)

let bound_of t u v =
  match List.find_opt (fun (v', _) -> v' = v) (out_edges t u) with
  | Some (_, b) -> Some b
  | None -> None

let max_bound t =
  List.fold_left
    (fun acc (_, _, b) ->
      match b with
      | Unbounded -> acc
      | Bounded k -> Some (max k (Option.value ~default:0 acc)))
    None t.edge_list

let has_unbounded_edge t =
  List.exists (fun (_, _, b) -> b = Unbounded) t.edge_list

let is_simulation_pattern t =
  List.for_all (fun (_, _, b) -> b = Bounded 1) t.edge_list

let to_simulation t =
  let edges = List.map (fun (u, v, _) -> (u, v, Bounded 1)) t.edge_list in
  make_exn ~nodes:t.nodes ~edges ~output:t.output

let matches_node t u label attrs =
  let spec = node_spec t u in
  (match spec.label with None -> true | Some l -> Label.equal l label)
  && Predicate.eval spec.pred attrs

let pnode_of_name t wanted =
  let rec loop u =
    if u >= size t then None
    else if String.equal t.nodes.(u).name wanted then Some u
    else loop (u + 1)
  in
  loop 0

let bound_to_string = function Bounded k -> string_of_int k | Unbounded -> "*"

let describe t =
  let buf = Buffer.create 256 in
  Array.iteri
    (fun u { name; label; pred } ->
      Buffer.add_string buf
        (Printf.sprintf "node %d %s %s [%s]\n" u name
           (match label with None -> "*" | Some l -> Label.to_string l)
           (Format.asprintf "%a" Predicate.pp pred)))
    t.nodes;
  List.iter
    (fun (u, v, b) ->
      Buffer.add_string buf (Printf.sprintf "edge %d %d %s\n" u v (bound_to_string b)))
    (List.sort compare t.edge_list);
  Buffer.add_string buf (Printf.sprintf "output %d\n" t.output);
  Buffer.contents buf

let equal a b = String.equal (describe a) (describe b)

let fingerprint t =
  (* FNV-1a over the canonical description; stable across runs. *)
  let text = describe t in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    text;
  Printf.sprintf "%016Lx" !h

let pp ppf t =
  Format.fprintf ppf "pattern(%d nodes, %d edges, output=%s)@\n%s" (size t)
    (edge_count t) (name t t.output) (describe t)
