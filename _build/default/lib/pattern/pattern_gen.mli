open Expfinder_graph

(** Random pattern-query workloads.

    Follows the methodology of the underlying papers: a query is a small
    connected pattern whose node labels are drawn from the data graph's
    label universe, with random bounds and optional attribute conditions.
    Node 0 is the output node and every node is reachable from it, so the
    query reads as "find experts of kind [labels.(0)] embedded in this
    team structure". *)

type config = {
  nodes : int;  (** number of pattern nodes, >= 1 *)
  extra_edges : int;  (** edges beyond the spanning arborescence *)
  max_bound : int;  (** bounds drawn uniformly from [1 .. max_bound] *)
  unbounded_prob : float;  (** probability an edge is [*] instead *)
  condition_prob : float;  (** probability a node gets an attribute condition *)
  condition_attr : string;  (** integer attribute to constrain, e.g. "exp" *)
  condition_range : int * int;  (** condition is [attr >= k], k uniform in range *)
}

val default : config
(** 4 nodes, 1 extra edge, bounds up to 3, no unbounded edges, 50%
    conditions on ["exp"] in [0..5]. *)

val generate : Prng.t -> config -> labels:Label.t array -> Pattern.t
(** [labels] is the universe to draw node labels from (typically the
    distinct labels of the data graph).  @raise Invalid_argument when
    [labels] is empty or the config is out of range. *)

val generate_many : Prng.t -> config -> labels:Label.t array -> int -> Pattern.t list

val simulation_config : config -> config
(** Same shape but all bounds forced to 1 (plain-simulation workload). *)
