lib/pattern/pattern_opt.mli: Pattern
