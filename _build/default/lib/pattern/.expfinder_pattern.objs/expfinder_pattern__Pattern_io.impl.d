lib/pattern/pattern_io.ml: Array Attr Buffer Expfinder_graph Format Fun Graph_io In_channel Label List Pattern Predicate Printf String
