lib/pattern/pattern.mli: Attrs Expfinder_graph Format Label Predicate
