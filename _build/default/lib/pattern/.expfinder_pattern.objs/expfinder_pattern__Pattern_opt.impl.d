lib/pattern/pattern_opt.ml: Array Attr Expfinder_graph Fun Hashtbl Label List Option Pattern Predicate
