lib/pattern/pattern_io.mli: Pattern Predicate
