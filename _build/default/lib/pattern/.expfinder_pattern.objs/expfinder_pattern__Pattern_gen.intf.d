lib/pattern/pattern_gen.mli: Expfinder_graph Label Pattern Prng
