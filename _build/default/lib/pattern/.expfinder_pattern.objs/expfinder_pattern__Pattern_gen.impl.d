lib/pattern/pattern_gen.ml: Array Expfinder_graph Hashtbl Label List Pattern Predicate Printf Prng
