lib/pattern/pattern.ml: Array Buffer Char Expfinder_graph Format Hashtbl Int64 Label List Option Predicate Printf String
