lib/pattern/predicate.ml: Attr Attrs Expfinder_graph Format List String
