lib/pattern/predicate.mli: Attr Attrs Expfinder_graph Format
