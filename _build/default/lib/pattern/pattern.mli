open Expfinder_graph

(** Pattern queries.

    A pattern query [Q] (Fig. 1(a) of the paper) is a small directed
    graph: each node carries a label requirement and a search-condition
    predicate; each edge carries a length bound [k >= 1] or [*]
    (unbounded).  An edge [(u, u')] with bound [k] requires a nonempty
    path of length [<= k] in the data graph; graph simulation is the
    special case where every bound is [1].  One node is designated the
    {e output node} — the one whose matches are returned as experts. *)

type pnode = int
(** Pattern nodes are dense integers [0 .. size-1]. *)

type bound = Bounded of int | Unbounded

type node_spec = {
  name : string;  (** display name, e.g. "SA" *)
  label : Label.t option;  (** [None] is a wildcard: any label matches *)
  pred : Predicate.t;
}

type t

val make :
  nodes:node_spec array ->
  edges:(pnode * pnode * bound) list ->
  output:pnode ->
  (t, string) result
(** Validation: at least one node; endpoints in range; no self-loop
    edges; bounds [>= 1]; at most one edge per ordered pair; [output] in
    range. *)

val make_exn :
  nodes:node_spec array -> edges:(pnode * pnode * bound) list -> output:pnode -> t
(** @raise Invalid_argument when [make] would return [Error]. *)

val size : t -> int
(** Number of pattern nodes. *)

val edge_count : t -> int

val node_spec : t -> pnode -> node_spec

val name : t -> pnode -> string

val output : t -> pnode

val edges : t -> (pnode * pnode * bound) list

val out_edges : t -> pnode -> (pnode * bound) list
(** Successors of [u] with their bounds. *)

val in_edges : t -> pnode -> (pnode * bound) list

val bound_of : t -> pnode -> pnode -> bound option

val max_bound : t -> int option
(** Largest finite bound; [None] when the pattern has no finite-bound
    edges.  Unbounded edges are ignored. *)

val has_unbounded_edge : t -> bool

val is_simulation_pattern : t -> bool
(** Every bound is exactly 1 (plain graph simulation). *)

val to_simulation : t -> t
(** Copy with every bound replaced by 1 (for baselines). *)

val matches_node : t -> pnode -> Label.t -> Attrs.t -> bool
(** Does a data node with this label and these attributes satisfy pattern
    node [u]'s label requirement and predicate? *)

val pnode_of_name : t -> string -> pnode option

val equal : t -> t -> bool

val fingerprint : t -> string
(** Stable digest of the full pattern structure, used as a cache key. *)

val pp : Format.formatter -> t -> unit
