open Expfinder_graph

let header = "expfinder-pattern 1"

let bound_to_string = function Pattern.Bounded k -> string_of_int k | Pattern.Unbounded -> "*"

let bound_of_string = function
  | "*" -> Ok Pattern.Unbounded
  | s -> (
    match int_of_string_opt s with
    | Some k when k >= 1 -> Ok (Pattern.Bounded k)
    | Some k -> Error (Printf.sprintf "bound %d must be >= 1" k)
    | None -> Error (Printf.sprintf "bad bound %S" s))

let atom_to_string { Predicate.attr; op; value } =
  Printf.sprintf "%s%s%s" (Graph_io.escape attr) (Predicate.op_to_string op)
    (Graph_io.escape (Attr.to_string value))

let to_string p =
  let buf = Buffer.create 512 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  for u = 0 to Pattern.size p - 1 do
    let { Pattern.name; label; pred } = Pattern.node_spec p u in
    Buffer.add_string buf
      (Printf.sprintf "node %d %s %s" u (Graph_io.escape name)
         (match label with None -> "*" | Some l -> Graph_io.escape (Label.to_string l)));
    List.iter
      (fun atom -> Buffer.add_string buf (" " ^ atom_to_string atom))
      (Predicate.atoms pred);
    Buffer.add_char buf '\n'
  done;
  List.iter
    (fun (u, v, b) ->
      Buffer.add_string buf (Printf.sprintf "edge %d %d %s\n" u v (bound_to_string b)))
    (Pattern.edges p);
  Buffer.add_string buf (Printf.sprintf "output %d\n" (Pattern.output p));
  Buffer.contents buf

(* Operators sorted so that two-character ones are tried first. *)
let operators = [ "<="; ">="; "!="; "="; "<"; ">" ]

let parse_atom token =
  let find_op () =
    List.find_map
      (fun op_text ->
        (* Locate the first occurrence of op_text not at position 0 (the
           attribute name must be nonempty). *)
        let n = String.length token and k = String.length op_text in
        let rec scan i =
          if i + k > n then None
          else if String.sub token i k = op_text then Some (i, op_text)
          else scan (i + 1)
        in
        scan 1)
      operators
  in
  match find_op () with
  | None -> Error (Printf.sprintf "malformed condition %S" token)
  | Some (i, op_text) -> (
    let attr = Graph_io.unescape (String.sub token 0 i) in
    let rest =
      Graph_io.unescape
        (String.sub token (i + String.length op_text)
           (String.length token - i - String.length op_text))
    in
    if rest = "" || String.contains "=<>!" rest.[0] then
      Error (Printf.sprintf "malformed condition %S" token)
    else
    match (Predicate.op_of_string op_text, Attr.of_string rest) with
    | Some op, Ok value -> Ok { Predicate.attr; op; value }
    | None, _ -> Error (Printf.sprintf "unknown operator %S" op_text)
    | _, Error e -> Error e)

type partial = {
  mutable nodes : Pattern.node_spec list; (* reversed *)
  mutable edges : (int * int * Pattern.bound) list;
  mutable output : int option;
}

let of_string text =
  let lines = String.split_on_char '\n' text in
  let p = { nodes = []; edges = []; output = None } in
  let err lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let rec loop lineno seen_header = function
    | [] ->
      if not seen_header then Error "empty input"
      else begin
        match p.output with
        | None -> Error "missing output declaration"
        | Some output ->
          Pattern.make
            ~nodes:(Array.of_list (List.rev p.nodes))
            ~edges:(List.rev p.edges) ~output
      end
    | line :: rest -> (
      let line = String.trim line in
      if line = "" || line.[0] = '#' then loop (lineno + 1) seen_header rest
      else if not seen_header then
        if line = header then loop (lineno + 1) true rest
        else err lineno (Printf.sprintf "expected header %S" header)
      else
        match String.split_on_char ' ' line with
        | "node" :: id :: name :: label :: atom_tokens -> (
          match int_of_string_opt id with
          | Some id when id = List.length p.nodes -> (
            let label =
              if label = "*" then None
              else Some (Label.of_string (Graph_io.unescape label))
            in
            let rec parse_atoms acc = function
              | [] -> Ok (Predicate.of_atoms (List.rev acc))
              | "" :: rest -> parse_atoms acc rest
              | token :: rest -> (
                match parse_atom token with
                | Ok a -> parse_atoms (a :: acc) rest
                | Error e -> Error e)
            in
            match parse_atoms [] atom_tokens with
            | Error e -> err lineno e
            | Ok pred ->
              p.nodes <-
                { Pattern.name = Graph_io.unescape name; label; pred } :: p.nodes;
              loop (lineno + 1) seen_header rest)
          | Some id ->
            err lineno
              (Printf.sprintf "node ids must be dense; got %d, expected %d" id
                 (List.length p.nodes))
          | None -> err lineno (Printf.sprintf "bad node id %S" id))
        | [ "edge"; src; dst; bound ] -> (
          match (int_of_string_opt src, int_of_string_opt dst, bound_of_string bound) with
          | Some u, Some v, Ok b ->
            p.edges <- (u, v, b) :: p.edges;
            loop (lineno + 1) seen_header rest
          | _, _, Error e -> err lineno e
          | _ -> err lineno "bad edge endpoints")
        | [ "output"; id ] -> (
          match int_of_string_opt id with
          | Some id ->
            p.output <- Some id;
            loop (lineno + 1) seen_header rest
          | None -> err lineno (Printf.sprintf "bad output id %S" id))
        | keyword :: _ -> err lineno (Printf.sprintf "unknown record %S" keyword)
        | [] -> loop (lineno + 1) seen_header rest)
  in
  loop 1 false lines

let save p path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string p))

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error e -> Error e

let to_dot ?(name = "Q") p =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  for u = 0 to Pattern.size p - 1 do
    let spec = Pattern.node_spec p u in
    let label_text =
      match spec.Pattern.label with
      | None -> "*"
      | Some l -> Label.to_string l
    in
    let pred_text = Format.asprintf "%a" Predicate.pp spec.Pattern.pred in
    let shape = if u = Pattern.output p then "doublecircle" else "ellipse" in
    Buffer.add_string buf
      (Printf.sprintf "  p%d [shape=%s, label=\"%s:%s\\n%s\"];\n" u shape
         spec.Pattern.name label_text pred_text)
  done;
  List.iter
    (fun (u, v, b) ->
      Buffer.add_string buf
        (Printf.sprintf "  p%d -> p%d [label=\"%s\"];\n" u v (bound_to_string b)))
    (Pattern.edges p);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let condition_to_string = atom_to_string

let condition_of_string = parse_atom
