open Expfinder_graph
open Expfinder_pattern
open Expfinder_core
open Expfinder_incremental
open Expfinder_compression
open Expfinder_storage

let src = Logs.Src.create "expfinder.engine" ~doc:"ExpFinder query engine"

module Log = (val Logs.src_log src : Logs.LOG)

type provenance = From_cache | From_compressed | From_index | Direct

let provenance_name = function
  | From_cache -> "cache"
  | From_compressed -> "compressed"
  | From_index -> "ball-index"
  | Direct -> "direct"

type answer = {
  relation : Match_relation.t;
  total : bool;
  provenance : provenance;
}

type expert = { node : int; name : string option; rank : Ranking.rank }

type t = {
  g : Digraph.t;
  mutable csr : Csr.t;
  cache : Cache.t;
  mutable compressed : Inc_compress.t option;
  mutable ball_index : Ball_index.t option;
  mutable ball_radius : int;
  mutable registered : (string * Incremental.t) list; (* fingerprint-keyed, in order *)
}

let create ?cache_capacity g =
  {
    g;
    csr = Csr.of_digraph g;
    cache = Cache.create ?capacity:cache_capacity ();
    compressed = None;
    ball_index = None;
    ball_radius = 0;
    registered = [];
  }

let graph t = t.g

let snapshot t =
  if Csr.source_version t.csr <> Digraph.version t.g then t.csr <- Csr.of_digraph t.g;
  t.csr

(* Direct evaluation goes through the planner: candidate ordering with
   early exit, sink pruning, and strategy selection (§III "optimized
   query plans"). *)
let run_direct pattern csr = Planner.run pattern csr

let evaluate t pattern =
  let version = Digraph.version t.g in
  match Cache.find t.cache pattern ~graph_version:version with
  | Some relation -> { relation; total = Match_relation.is_total relation; provenance = From_cache }
  | None ->
    let registered_kernel =
      match List.assoc_opt (Pattern.fingerprint pattern) t.registered with
      | Some inc when Incremental.version inc = version ->
        Some (Match_relation.copy (Incremental.kernel inc))
      | _ -> None
    in
    let relation, provenance =
      match registered_kernel with
      | Some relation -> (relation, Direct)
      | None -> (
        let compressed_answer =
          match t.compressed with
          | Some inc
            when Csr.source_version (Inc_compress.snapshot inc) = version
                 && Compress.supports (Inc_compress.current inc) pattern ->
            Some (Compress.evaluate (Inc_compress.current inc) pattern)
          | _ -> None
        in
        match compressed_answer with
        | Some relation -> (relation, From_compressed)
        | None -> (
          let csr = snapshot t in
          (* Rebuild the opt-in ball index lazily after updates. *)
          (match t.ball_index with
          | Some idx
            when Ball_index.source_version idx <> Csr.source_version csr ->
            t.ball_index <- Some (Ball_index.build csr ~radius:t.ball_radius)
          | _ -> ());
          match t.ball_index with
          | Some idx when Ball_index.supports idx pattern ->
            (Ball_index.evaluate idx pattern csr, From_index)
          | _ -> (run_direct pattern csr, Direct)))
    in
    Cache.store t.cache pattern ~graph_version:version relation;
    Log.debug (fun m ->
        m "evaluate %s: %d pairs via %s" (Pattern.fingerprint pattern)
          (Match_relation.total relation) (provenance_name provenance));
    { relation; total = Match_relation.is_total relation; provenance }

let result_graph t pattern =
  let answer = evaluate t pattern in
  let relation =
    if answer.total then answer.relation
    else
      Match_relation.create ~pattern_size:(Pattern.size pattern)
        ~graph_size:(Digraph.node_count t.g)
  in
  Result_graph.build pattern (snapshot t) relation

let top_k t pattern ~k =
  let answer = evaluate t pattern in
  if not answer.total then []
  else begin
    let csr = snapshot t in
    let gr = Result_graph.build pattern csr answer.relation in
    let output_matches = Match_relation.matches answer.relation (Pattern.output pattern) in
    Ranking.top_k gr ~output_matches ~k
    |> List.map (fun (node, rank) ->
           let name =
             match Attrs.find (Csr.attrs csr node) "name" with
             | Some (Attr.String s) -> Some s
             | Some _ | None -> None
           in
           { node; name; rank })
  end

let enable_ball_index ?(radius = 3) t =
  t.ball_radius <- radius;
  t.ball_index <- Some (Ball_index.build (snapshot t) ~radius)

let disable_ball_index t = t.ball_index <- None

let enable_compression ?atoms t =
  t.compressed <- Some (Inc_compress.create ?atoms t.g)

let disable_compression t = t.compressed <- None

let compression t = Option.map Inc_compress.current t.compressed

let register t pattern =
  let fp = Pattern.fingerprint pattern in
  if not (List.mem_assoc fp t.registered) then
    t.registered <- t.registered @ [ (fp, Incremental.create pattern t.g) ]

let unregister t pattern =
  let fp = Pattern.fingerprint pattern in
  t.registered <- List.filter (fun (fp', _) -> fp' <> fp) t.registered

let registered t = List.map (fun (_, inc) -> Incremental.pattern inc) t.registered

let apply_updates t updates =
  let effective = Update.apply_batch_filtered t.g updates in
  let new_csr = Csr.of_digraph t.g in
  t.csr <- new_csr;
  (* Results for old versions are unreachable (keys include the version),
     but drop them eagerly to keep the cache useful. *)
  Cache.clear t.cache;
  Option.iter
    (fun inc ->
      ignore
        (Inc_compress.sync inc ~new_csr ~effective:(List.length effective) effective
          : Inc_compress.report))
    t.compressed;
  Log.debug (fun m ->
      m "apply_updates: %d effective, %d registered queries, compression %s"
        (List.length effective) (List.length t.registered)
        (if t.compressed = None then "off" else "maintained"));
  List.map (fun (_, inc) -> Incremental.sync_applied inc ~effective) t.registered

let cache_stats t = (Cache.hits t.cache, Cache.misses t.cache)

let explain t pattern = Planner.explain pattern (Planner.plan pattern (snapshot t))
