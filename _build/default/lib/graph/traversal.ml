type node = int

let bfs_generic ~iter_next g sources f =
  let n = Csr.node_count g in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      if s < 0 || s >= n then invalid_arg "Traversal.bfs";
      if dist.(s) < 0 then begin
        dist.(s) <- 0;
        Queue.add s queue
      end)
    sources;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    f v dist.(v);
    iter_next g v (fun w ->
        if dist.(w) < 0 then begin
          dist.(w) <- dist.(v) + 1;
          Queue.add w queue
        end)
  done

let bfs g sources f = bfs_generic ~iter_next:Csr.iter_succ g sources f

let bfs_rev g sources f = bfs_generic ~iter_next:Csr.iter_pred g sources f

let reachable_from g sources =
  let set = Bitset.create (Csr.node_count g) in
  bfs g sources (fun v _ -> Bitset.add set v);
  set

let ancestors_of g sources =
  let set = Bitset.create (Csr.node_count g) in
  bfs_rev g sources (fun v _ -> Bitset.add set v);
  set

let dfs_postorder g f =
  let n = Csr.node_count g in
  let state = Array.make n 0 in
  (* 0 = unvisited, 1 = on stack, 2 = done *)
  let stack = Vec.create ~dummy:(-1) () in
  for root = 0 to n - 1 do
    if state.(root) = 0 then begin
      Vec.push stack root;
      while not (Vec.is_empty stack) do
        let v = Vec.top stack in
        if state.(v) = 0 then begin
          state.(v) <- 1;
          Csr.iter_succ g v (fun w -> if state.(w) = 0 then Vec.push stack w)
        end
        else begin
          ignore (Vec.pop stack : int);
          if state.(v) = 1 then begin
            state.(v) <- 2;
            f v
          end
        end
      done
    end
  done

let topological_order g =
  let n = Csr.node_count g in
  let indeg = Array.init n (Csr.in_degree g) in
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let order = Array.make n (-1) in
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order.(!count) <- v;
    incr count;
    Csr.iter_succ g v (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
  done;
  if !count = n then Some order else None

let is_dag g = Option.is_some (topological_order g)
