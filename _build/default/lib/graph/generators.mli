(** Random graph structure generators.

    Structure only: each generator takes a [node_init] callback mapping a
    node index to its label and attributes, so workload modules decide the
    labelling/attribute distributions (§III "synthetic graph generator").
    All generators are deterministic given the {!Prng.t}. *)

type node_init = int -> Label.t * Attrs.t

val erdos_renyi : Prng.t -> n:int -> m:int -> node_init -> Digraph.t
(** Uniform random simple digraph with [n] nodes and (up to) [m] edges;
    duplicate draws are retried, so the result has exactly [m] edges
    whenever [m <= n*(n-1)]. *)

val scale_free : Prng.t -> n:int -> out_degree:int -> node_init -> Digraph.t
(** Barabási–Albert-style preferential attachment: nodes arrive one by
    one and send [out_degree] edges to earlier nodes chosen proportional
    to (in-degree + 1).  Produces the skewed in-degree distribution of
    follower networks. *)

val random_dag : Prng.t -> n:int -> m:int -> node_init -> Digraph.t
(** Random DAG: edges only go from lower to higher node index. *)

val layered : Prng.t -> layers:int array -> p:float -> node_init -> Digraph.t
(** Random layered graph: [layers.(i)] nodes in layer [i]; each possible
    edge from layer [i] to layer [i+1] is present with probability [p].
    Layered graphs have many bisimilar nodes, mirroring the redundancy of
    organisational networks (used by compression experiments). *)

val add_random_edges : Prng.t -> Digraph.t -> int -> int
(** Insert up to [k] fresh random edges; returns the number inserted. *)
