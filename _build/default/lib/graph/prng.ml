type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 finaliser: the output function of Steele et al.'s SplitMix. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next t in
  { state = mix seed }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int";
  (* Rejection-free for our purposes: modulo bias is negligible for the
     bounds used by generators (\<= 2^40 vs a 62-bit range). *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next t) 1L = 1L

let choose t a =
  if Array.length a = 0 then invalid_arg "Prng.choose";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Prng.sample_without_replacement";
  (* Floyd's algorithm: O(k) expected insertions. *)
  let seen = Hashtbl.create (2 * k) in
  let out = Array.make k 0 in
  let idx = ref 0 in
  for j = n - k to n - 1 do
    let r = int t (j + 1) in
    let v = if Hashtbl.mem seen r then j else r in
    Hashtbl.replace seen v ();
    out.(!idx) <- v;
    incr idx
  done;
  out
