(** Dense fixed-capacity bitsets over integers [0 .. capacity-1].

    Used for match-relation membership, reachability sets and visited
    marks; all operations are O(1) or O(capacity/64). *)

type t

val create : int -> t
(** [create n] is an empty set with capacity [n] (all bits clear). *)

val capacity : t -> int

val mem : t -> int -> bool

val add : t -> int -> unit

val remove : t -> int -> unit

val clear : t -> unit
(** Clear all bits. *)

val cardinal : t -> int
(** Number of set bits (popcount over the backing words). *)

val is_empty : t -> bool

val iter : (int -> unit) -> t -> unit
(** Iterate set bits in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val to_list : t -> int list
(** Set bits in increasing order. *)

val copy : t -> t

val union_into : t -> t -> unit
(** [union_into dst src] sets [dst := dst ∪ src].  Capacities must match. *)

val inter_into : t -> t -> unit
(** [inter_into dst src] sets [dst := dst ∩ src].  Capacities must match. *)

val equal : t -> t -> bool

val subset : t -> t -> bool
(** [subset a b] is [true] when every element of [a] is in [b]. *)
