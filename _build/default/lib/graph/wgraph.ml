type node = int

type t = {
  out_adj : (node * int) Vec.t array;
  in_adj : (node * int) Vec.t array;
  mutable edges : int;
}

let create n =
  if n < 0 then invalid_arg "Wgraph.create";
  {
    out_adj = Array.init (max n 1) (fun _ -> Vec.create ~capacity:2 ~dummy:(-1, 0) ());
    in_adj = Array.init (max n 1) (fun _ -> Vec.create ~capacity:2 ~dummy:(-1, 0) ());
    edges = 0;
  }

let node_count g = Array.length g.out_adj

let edge_count g = g.edges

let check g v = if v < 0 || v >= node_count g then invalid_arg "Wgraph: unknown node"

let find_slot adj v = Vec.find_index (fun (w, _) -> w = v) adj

let add_edge g u v w =
  check g u;
  check g v;
  if w < 0 then invalid_arg "Wgraph.add_edge: negative weight";
  match find_slot g.out_adj.(u) v with
  | Some i ->
    let _, old = Vec.get g.out_adj.(u) i in
    if w < old then begin
      Vec.set g.out_adj.(u) i (v, w);
      match find_slot g.in_adj.(v) u with
      | Some j -> Vec.set g.in_adj.(v) j (u, w)
      | None -> assert false
    end
  | None ->
    Vec.push g.out_adj.(u) (v, w);
    Vec.push g.in_adj.(v) (u, w);
    g.edges <- g.edges + 1

let weight g u v =
  check g u;
  check g v;
  Option.map (fun i -> snd (Vec.get g.out_adj.(u) i)) (find_slot g.out_adj.(u) v)

let iter_succ g v f =
  check g v;
  Vec.iter (fun (w, d) -> f w d) g.out_adj.(v)

let iter_pred g v f =
  check g v;
  Vec.iter (fun (w, d) -> f w d) g.in_adj.(v)

let iter_edges g f =
  Array.iteri (fun u adj -> Vec.iter (fun (v, w) -> f u v w) adj) g.out_adj

let dijkstra_generic ~iter_next g src =
  check g src;
  let n = node_count g in
  let dist = Array.make n (-1) in
  let heap = Pqueue.create () in
  Pqueue.push heap 0 src;
  let finished = Array.make n false in
  let continue = ref true in
  while !continue do
    match Pqueue.pop_min heap with
    | None -> continue := false
    | Some (d, v) ->
      if not finished.(v) then begin
        finished.(v) <- true;
        dist.(v) <- d;
        iter_next g v (fun w dw ->
            if not finished.(w) then Pqueue.push heap (d + dw) w)
      end
  done;
  dist

let dijkstra g src = dijkstra_generic ~iter_next:iter_succ g src

let dijkstra_rev g src = dijkstra_generic ~iter_next:iter_pred g src

let transpose g =
  let t = create (node_count g) in
  iter_edges g (fun u v w -> add_edge t v u w);
  t
