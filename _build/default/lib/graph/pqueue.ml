type 'a entry = { prio : int; payload : 'a }

type 'a t = { mutable data : 'a entry array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length h = h.len

let is_empty h = h.len = 0

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.data.(i).prio < h.data.(parent).prio then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && h.data.(l).prio < h.data.(!smallest).prio then smallest := l;
  if r < h.len && h.data.(r).prio < h.data.(!smallest).prio then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h prio payload =
  let entry = { prio; payload } in
  if h.len = Array.length h.data then begin
    let cap = max 8 (2 * Array.length h.data) in
    let data = Array.make cap entry in
    Array.blit h.data 0 data 0 h.len;
    h.data <- data
  end;
  h.data.(h.len) <- entry;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let pop_min h =
  if h.len = 0 then None
  else begin
    let { prio; payload } = h.data.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.data.(0) <- h.data.(h.len);
      sift_down h 0
    end;
    Some (prio, payload)
  end

let peek_min h = if h.len = 0 then None else Some (h.data.(0).prio, h.data.(0).payload)

let clear h =
  h.data <- [||];
  h.len <- 0
