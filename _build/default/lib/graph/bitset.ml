type t = { words : int array; capacity : int }

let bits_per_word = 63
(* OCaml ints are 63-bit on 64-bit platforms; using 63 bits per word keeps
   the implementation portable without Int64 boxing. *)

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { words = Array.make ((n / bits_per_word) + 1) 0; capacity = n }

let capacity t = t.capacity

let check t i = if i < 0 || i >= t.capacity then invalid_arg "Bitset: out of bounds"

let mem t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let remove t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let clear t = Array.fill t.words 0 (Array.length t.words) 0

(* Kernighan's trick: one iteration per set bit. *)
let popcount x =
  let rec kern x acc = if x = 0 then acc else kern (x land (x - 1)) (acc + 1) in
  kern x 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = ref t.words.(w) in
    while !word <> 0 do
      let bit = !word land - !word in
      (* index of lowest set bit *)
      let rec log2 b acc = if b = 1 then acc else log2 (b lsr 1) (acc + 1) in
      f ((w * bits_per_word) + log2 bit 0);
      word := !word land lnot bit
    done
  done

let fold f t acc =
  let acc = ref acc in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let copy t = { words = Array.copy t.words; capacity = t.capacity }

let same_capacity a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset: capacity mismatch"

let union_into dst src =
  same_capacity dst src;
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) lor src.words.(w)
  done

let inter_into dst src =
  same_capacity dst src;
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) land src.words.(w)
  done

let equal a b = a.capacity = b.capacity && Array.for_all2 ( = ) a.words b.words

let subset a b =
  same_capacity a b;
  let ok = ref true in
  for w = 0 to Array.length a.words - 1 do
    if a.words.(w) land lnot b.words.(w) <> 0 then ok := false
  done;
  !ok
