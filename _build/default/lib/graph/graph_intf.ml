(** Minimal read interface shared by {!Csr} (immutable snapshots, used by
    batch evaluation) and {!Digraph} (live graphs, used by incremental
    maintenance so that small updates do not pay a full snapshot
    rebuild).  Algorithms that must run on either are functorised over
    this signature. *)

module type GRAPH = sig
  type t

  val node_count : t -> int

  val label : t -> int -> Label.t

  val attrs : t -> int -> Attrs.t

  val iter_succ : t -> int -> (int -> unit) -> unit

  val iter_pred : t -> int -> (int -> unit) -> unit

  val fold_succ : t -> int -> ('a -> int -> 'a) -> 'a -> 'a
end
