type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ?(capacity = 8) ~dummy () =
  let capacity = max capacity 1 in
  { data = Array.make capacity dummy; len = 0; dummy }

let make n x =
  if n < 0 then invalid_arg "Vec.make";
  { data = Array.make (max n 1) x; len = n; dummy = x }

let length v = v.len

let is_empty v = v.len = 0

let check v i name = if i < 0 || i >= v.len then invalid_arg name

let get v i =
  check v i "Vec.get";
  v.data.(i)

let set v i x =
  check v i "Vec.set";
  v.data.(i) <- x

let grow v =
  let data = Array.make (2 * Array.length v.data) v.dummy in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  if v.len = Array.length v.data then grow v;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop";
  v.len <- v.len - 1;
  let x = v.data.(v.len) in
  v.data.(v.len) <- v.dummy;
  x

let top v =
  if v.len = 0 then invalid_arg "Vec.top";
  v.data.(v.len - 1)

let clear v =
  Array.fill v.data 0 v.len v.dummy;
  v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let exists p v =
  let rec loop i = i < v.len && (p v.data.(i) || loop (i + 1)) in
  loop 0

let find_index p v =
  let rec loop i =
    if i >= v.len then None else if p v.data.(i) then Some i else loop (i + 1)
  in
  loop 0

let remove_first p v =
  match find_index p v with
  | None -> false
  | Some i ->
    v.len <- v.len - 1;
    v.data.(i) <- v.data.(v.len);
    v.data.(v.len) <- v.dummy;
    true

let to_list v =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (v.data.(i) :: acc) in
  loop (v.len - 1) []

let to_array v = Array.sub v.data 0 v.len

let of_list ~dummy xs =
  let v = create ~dummy () in
  List.iter (push v) xs;
  v

let copy v = { data = Array.copy v.data; len = v.len; dummy = v.dummy }

let blit_into_array v dst pos = Array.blit v.data 0 dst pos v.len
