(** Deterministic pseudo-random number generator (splitmix64).

    All randomised components of the library (graph generators, query
    workloads, update streams, property tests) draw from an explicit
    [Prng.t] so that every experiment is reproducible from a seed, without
    depending on the global [Random] state. *)

type t

val create : int -> t
(** [create seed] is a fresh generator.  Equal seeds yield equal streams. *)

val copy : t -> t
(** An independent generator continuing from the same state. *)

val split : t -> t
(** A statistically independent generator derived from [t]; [t] advances. *)

val next : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  @raise Invalid_argument
    when [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] draws [k] distinct integers from
    [\[0, n)] (Floyd's algorithm); the result is in arbitrary order.
    @raise Invalid_argument when [k > n] or [k < 0]. *)
