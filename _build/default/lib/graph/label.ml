type t = int

let table : (string, int) Hashtbl.t = Hashtbl.create 64

let names : string Vec.t = Vec.create ~dummy:"" ()

let of_string s =
  match Hashtbl.find_opt table s with
  | Some id -> id
  | None ->
    let id = Vec.length names in
    Hashtbl.add table s id;
    Vec.push names s;
    id

let to_string id =
  if id < 0 || id >= Vec.length names then invalid_arg "Label.to_string";
  Vec.get names id

let equal = Int.equal

let compare = Int.compare

let hash (id : t) = id

let to_int id = id

let count () = Vec.length names

let pp ppf id = Format.pp_print_string ppf (to_string id)
