type node_init = int -> Label.t * Attrs.t

let make_nodes n node_init =
  let g = Digraph.create ~capacity:n () in
  for i = 0 to n - 1 do
    let label, attrs = node_init i in
    ignore (Digraph.add_node g ~attrs label : int)
  done;
  g

let erdos_renyi rng ~n ~m node_init =
  if n < 0 || m < 0 then invalid_arg "Generators.erdos_renyi";
  let max_edges = n * (n - 1) in
  let m = min m max_edges in
  let g = make_nodes n node_init in
  let added = ref 0 in
  (* Retry duplicates; for the sparse regimes used here (m << n^2) the
     expected number of retries is negligible. *)
  while !added < m do
    let u = Prng.int rng n in
    let v = Prng.int rng n in
    if u <> v && Digraph.add_edge g u v then incr added
  done;
  g

let scale_free rng ~n ~out_degree node_init =
  if n < 0 || out_degree < 0 then invalid_arg "Generators.scale_free";
  let g = make_nodes n node_init in
  (* Repeated-endpoint list: choosing a uniform element of [targets] is
     choosing proportional to (in-degree + 1). *)
  let targets = Vec.create ~capacity:(2 * n) ~dummy:(-1) () in
  for v = 0 to n - 1 do
    if v > 0 then begin
      let wanted = min out_degree v in
      let placed = ref 0 in
      let attempts = ref 0 in
      while !placed < wanted && !attempts < 20 * wanted do
        incr attempts;
        let t = Vec.get targets (Prng.int rng (Vec.length targets)) in
        if Digraph.add_edge g v t then begin
          incr placed;
          Vec.push targets t
        end
      done
    end;
    Vec.push targets v
  done;
  g

let random_dag rng ~n ~m node_init =
  if n < 2 then make_nodes n node_init
  else begin
    let g = make_nodes n node_init in
    let max_edges = n * (n - 1) / 2 in
    let m = min m max_edges in
    let added = ref 0 in
    while !added < m do
      let u = Prng.int rng n in
      let v = Prng.int rng n in
      let u, v = if u < v then (u, v) else (v, u) in
      if u <> v && Digraph.add_edge g u v then incr added
    done;
    g
  end

let layered rng ~layers ~p node_init =
  let n = Array.fold_left ( + ) 0 layers in
  let g = make_nodes n node_init in
  let offset = Array.make (Array.length layers + 1) 0 in
  Array.iteri (fun i sz -> offset.(i + 1) <- offset.(i) + sz) layers;
  for layer = 0 to Array.length layers - 2 do
    for u = offset.(layer) to offset.(layer + 1) - 1 do
      for v = offset.(layer + 1) to offset.(layer + 2) - 1 do
        if Prng.float rng 1.0 < p then ignore (Digraph.add_edge g u v : bool)
      done
    done
  done;
  g

let add_random_edges rng g k =
  let n = Digraph.node_count g in
  if n < 2 then 0
  else begin
    let added = ref 0 in
    let attempts = ref 0 in
    while !added < k && !attempts < 50 * k do
      incr attempts;
      let u = Prng.int rng n in
      let v = Prng.int rng n in
      if u <> v && Digraph.add_edge g u v then incr added
    done;
    !added
  end
