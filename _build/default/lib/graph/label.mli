(** Interned node labels.

    Labels (the "field" of a person in the paper — system architect,
    system developer, ...) are interned to small integers so that label
    comparison during matching and partition refinement is O(1).  The
    intern table is process-global and append-only; interning is
    deterministic within a run. *)

type t = private int

val of_string : string -> t
(** Intern a string, returning its symbol.  Idempotent. *)

val to_string : t -> string
(** @raise Invalid_argument on a symbol that was never interned. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val to_int : t -> int
(** The raw symbol, usable as an array index (symbols are dense from 0). *)

val count : unit -> int
(** Number of distinct labels interned so far. *)

val pp : Format.formatter -> t -> unit
