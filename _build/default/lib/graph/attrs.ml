type t = (string * Attr.t) list
(* Invariant: sorted by name, no duplicate names. *)

let empty = []

let rec set t name value =
  match t with
  | [] -> [ (name, value) ]
  | ((name', _) as binding) :: rest ->
    let c = String.compare name name' in
    if c < 0 then (name, value) :: t
    else if c = 0 then (name, value) :: rest
    else binding :: set rest name value

let of_list bindings = List.fold_left (fun acc (k, v) -> set acc k v) empty bindings

let to_list t = t

let find t name =
  let rec loop = function
    | [] -> None
    | (name', v) :: rest ->
      let c = String.compare name name' in
      if c = 0 then Some v else if c < 0 then None else loop rest
  in
  loop t

let rec remove t name =
  match t with
  | [] -> []
  | ((name', _) as binding) :: rest ->
    let c = String.compare name name' in
    if c < 0 then t else if c = 0 then rest else binding :: remove rest name

let mem t name = Option.is_some (find t name)

let cardinal = List.length

let is_empty t = t = []

let equal a b =
  List.equal (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && Attr.equal v1 v2) a b

let union a b = List.fold_left (fun acc (k, v) -> set acc k v) a b

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf (k, v) -> Format.fprintf ppf "%s=%a" k Attr.pp v))
    t

let int name v = (name, Attr.Int v)

let str name v = (name, Attr.String v)

let float name v = (name, Attr.Float v)

let bool name v = (name, Attr.Bool v)
