(** Growable arrays.

    A thin, allocation-friendly dynamic array used throughout the graph
    substrate for adjacency lists and node tables.  Elements live in a
    backing [array] that doubles on overflow; a dummy element fills the
    unused tail so the structure works for any element type. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] is an empty vector.  [dummy] fills unused slots of
    the backing array and is never observable through the API. *)

val make : int -> 'a -> 'a t
(** [make n x] is a vector of length [n] filled with [x]. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** [get v i] is the [i]-th element.  @raise Invalid_argument when [i] is
    out of bounds. *)

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> unit
(** Append one element, growing the backing array if needed. *)

val pop : 'a t -> 'a
(** Remove and return the last element.  @raise Invalid_argument on an
    empty vector. *)

val top : 'a t -> 'a
(** Last element without removing it. *)

val clear : 'a t -> unit
(** Logical reset to length 0; capacity is retained. *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val exists : ('a -> bool) -> 'a t -> bool

val find_index : ('a -> bool) -> 'a t -> int option
(** Index of the first element satisfying the predicate. *)

val remove_first : ('a -> bool) -> 'a t -> bool
(** Remove the first element satisfying the predicate by swapping the last
    element into its slot (order is not preserved).  Returns [true] when an
    element was removed. *)

val to_list : 'a t -> 'a list

val to_array : 'a t -> 'a array

val of_list : dummy:'a -> 'a list -> 'a t

val copy : 'a t -> 'a t

val blit_into_array : 'a t -> 'a array -> int -> unit
(** [blit_into_array v dst pos] copies the live elements of [v] into [dst]
    starting at [pos]. *)
