(** Attribute values.

    Nodes carry a small record of named attributes (name, specialty,
    experience, ...).  Values are dynamically typed; comparisons between
    values of different types are [None] rather than an error, so that a
    predicate on a missing/mistyped attribute simply fails to hold. *)

type t =
  | Int of int
  | Float of float
  | Bool of bool
  | String of string

val equal : t -> t -> bool
(** Structural equality; [Int] and [Float] never compare equal. *)

val compare_values : t -> t -> int option
(** Total order within a type: [Some c] when both values have the same
    constructor ([Int]/[Int], [Float]/[Float], ...), [None] otherwise.
    Strings compare lexicographically, booleans with [false < true]. *)

val type_name : t -> string
(** ["int"], ["float"], ["bool"] or ["string"]. *)

val to_string : t -> string
(** Render the value in the graph file syntax ([int:5], [str:DBA], ...). *)

val of_string : string -> (t, string) result
(** Parse the [to_string] syntax back.  Untagged input is parsed with
    best-effort inference (int, then float, then bool, then string). *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering (no type tag). *)
