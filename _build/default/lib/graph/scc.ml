type t = {
  comp : int array; (* node -> component id *)
  mutable ncomp : int;
  mutable member_lists : int list array;
}

(* Iterative Tarjan.  Each frame on [call_stack] is (node, next-successor
   index); [succ_cache] materialises successor arrays once per node so the
   frame index has something stable to walk. *)
let compute g =
  let n = Csr.node_count g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = Vec.create ~dummy:(-1) () in
  let next_index = ref 0 in
  let ncomp = ref 0 in
  let call_nodes = Vec.create ~dummy:(-1) () in
  let call_pos = Vec.create ~dummy:(-1) () in
  let succ_of = Array.make (max n 1) [||] in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      let push_frame v =
        index.(v) <- !next_index;
        lowlink.(v) <- !next_index;
        incr next_index;
        Vec.push stack v;
        on_stack.(v) <- true;
        succ_of.(v) <- Csr.succ_array g v;
        Vec.push call_nodes v;
        Vec.push call_pos 0
      in
      push_frame root;
      while not (Vec.is_empty call_nodes) do
        let v = Vec.top call_nodes in
        let pos = Vec.top call_pos in
        if pos < Array.length succ_of.(v) then begin
          Vec.set call_pos (Vec.length call_pos - 1) (pos + 1);
          let w = succ_of.(v).(pos) in
          if index.(w) < 0 then push_frame w
          else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
        end
        else begin
          ignore (Vec.pop call_nodes : int);
          ignore (Vec.pop call_pos : int);
          if lowlink.(v) = index.(v) then begin
            let continue = ref true in
            while !continue do
              let w = Vec.pop stack in
              on_stack.(w) <- false;
              comp.(w) <- !ncomp;
              if w = v then continue := false
            done;
            incr ncomp
          end;
          if not (Vec.is_empty call_nodes) then begin
            let parent = Vec.top call_nodes in
            lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
          end
        end
      done
    end
  done;
  let member_lists = Array.make (max !ncomp 1) [] in
  for v = n - 1 downto 0 do
    member_lists.(comp.(v)) <- v :: member_lists.(comp.(v))
  done;
  { comp; ncomp = !ncomp; member_lists }

let count t = t.ncomp

let component t v =
  if v < 0 || v >= Array.length t.comp then invalid_arg "Scc.component";
  t.comp.(v)

let members t c =
  if c < 0 || c >= t.ncomp then invalid_arg "Scc.members";
  t.member_lists.(c)

let component_size t c = List.length (members t c)

let condensation t g =
  let adj = Array.make (max t.ncomp 1) [] in
  let seen = Hashtbl.create 64 in
  Csr.iter_edges g (fun u v ->
      let cu = t.comp.(u) and cv = t.comp.(v) in
      if cu <> cv && not (Hashtbl.mem seen (cu, cv)) then begin
        Hashtbl.add seen (cu, cv) ();
        adj.(cu) <- cv :: adj.(cu)
      end);
  adj

let is_trivial t g c =
  match members t c with
  | [ v ] -> not (Csr.has_edge g v v)
  | _ -> false
