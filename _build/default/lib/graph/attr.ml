type t =
  | Int of int
  | Float of float
  | Bool of bool
  | String of string

let equal a b =
  match (a, b) with
  | Int x, Int y -> Int.equal x y
  | Float x, Float y -> Float.equal x y
  | Bool x, Bool y -> Bool.equal x y
  | String x, String y -> String.equal x y
  | (Int _ | Float _ | Bool _ | String _), _ -> false

let compare_values a b =
  match (a, b) with
  | Int x, Int y -> Some (Int.compare x y)
  | Float x, Float y -> Some (Float.compare x y)
  | Bool x, Bool y -> Some (Bool.compare x y)
  | String x, String y -> Some (String.compare x y)
  | (Int _ | Float _ | Bool _ | String _), _ -> None

let type_name = function
  | Int _ -> "int"
  | Float _ -> "float"
  | Bool _ -> "bool"
  | String _ -> "string"

let to_string = function
  | Int i -> "int:" ^ string_of_int i
  | Float f -> "float:" ^ string_of_float f
  | Bool b -> "bool:" ^ string_of_bool b
  | String s -> "str:" ^ s

let of_string s =
  let tagged prefix body =
    match prefix with
    | "int" -> (
      match int_of_string_opt body with
      | Some i -> Ok (Int i)
      | None -> Error (Printf.sprintf "invalid int attribute %S" body))
    | "float" -> (
      match float_of_string_opt body with
      | Some f -> Ok (Float f)
      | None -> Error (Printf.sprintf "invalid float attribute %S" body))
    | "bool" -> (
      match bool_of_string_opt body with
      | Some b -> Ok (Bool b)
      | None -> Error (Printf.sprintf "invalid bool attribute %S" body))
    | "str" -> Ok (String body)
    | _ -> Error (Printf.sprintf "unknown attribute tag %S" prefix)
  in
  match String.index_opt s ':' with
  | Some i when List.mem (String.sub s 0 i) [ "int"; "float"; "bool"; "str" ] ->
    tagged (String.sub s 0 i) (String.sub s (i + 1) (String.length s - i - 1))
  | _ -> (
    (* Untagged: best-effort inference. *)
    match int_of_string_opt s with
    | Some i -> Ok (Int i)
    | None -> (
      match float_of_string_opt s with
      | Some f -> Ok (Float f)
      | None -> (
        match bool_of_string_opt s with
        | Some b -> Ok (Bool b)
        | None -> Ok (String s))))

let pp ppf = function
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.pp_print_float ppf f
  | Bool b -> Format.pp_print_bool ppf b
  | String s -> Format.pp_print_string ppf s
