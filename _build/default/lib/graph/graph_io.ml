let header = "expfinder-graph 1"

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | ' ' -> Buffer.add_string buf "%20"
      | '%' -> Buffer.add_string buf "%25"
      | '=' -> Buffer.add_string buf "%3d"
      | '\n' -> Buffer.add_string buf "%0a"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec loop i =
    if i < n then
      if s.[i] = '%' && i + 2 < n then begin
        let hex = String.sub s (i + 1) 2 in
        match int_of_string_opt ("0x" ^ hex) with
        | Some code ->
          Buffer.add_char buf (Char.chr code);
          loop (i + 3)
        | None ->
          Buffer.add_char buf s.[i];
          loop (i + 1)
      end
      else begin
        Buffer.add_char buf s.[i];
        loop (i + 1)
      end
  in
  loop 0;
  Buffer.contents buf

let to_string g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Digraph.iter_nodes g (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "node %d %s" v (escape (Label.to_string (Digraph.label g v))));
      List.iter
        (fun (k, value) ->
          Buffer.add_string buf
            (Printf.sprintf " %s=%s" (escape k) (escape (Attr.to_string value))))
        (Attrs.to_list (Digraph.attrs g v));
      Buffer.add_char buf '\n');
  Digraph.iter_edges g (fun u v ->
      Buffer.add_string buf (Printf.sprintf "edge %d %d\n" u v));
  Buffer.contents buf

let parse_attr_binding token =
  match String.index_opt token '=' with
  | None -> Error (Printf.sprintf "malformed attribute %S (expected key=value)" token)
  | Some i ->
    let key = unescape (String.sub token 0 i) in
    let raw = unescape (String.sub token (i + 1) (String.length token - i - 1)) in
    Result.map (fun v -> (key, v)) (Attr.of_string raw)

let of_string text =
  let lines = String.split_on_char '\n' text in
  let g = Digraph.create () in
  let err lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let rec loop lineno seen_header = function
    | [] -> if seen_header then Ok g else Error "empty input"
    | line :: rest -> (
      let line = String.trim line in
      if line = "" || line.[0] = '#' then loop (lineno + 1) seen_header rest
      else if not seen_header then
        if line = header then loop (lineno + 1) true rest
        else err lineno (Printf.sprintf "expected header %S" header)
      else
        match String.split_on_char ' ' line with
        | "node" :: id :: label :: attr_tokens -> (
          match int_of_string_opt id with
          | None -> err lineno (Printf.sprintf "bad node id %S" id)
          | Some id ->
            if id <> Digraph.node_count g then
              err lineno (Printf.sprintf "node ids must be dense; got %d, expected %d" id (Digraph.node_count g))
            else begin
              let rec parse_attrs acc = function
                | [] -> Ok (Attrs.of_list (List.rev acc))
                | "" :: rest -> parse_attrs acc rest
                | token :: rest -> (
                  match parse_attr_binding token with
                  | Ok binding -> parse_attrs (binding :: acc) rest
                  | Error e -> Error e)
              in
              match parse_attrs [] attr_tokens with
              | Error e -> err lineno e
              | Ok attrs ->
                ignore
                  (Digraph.add_node g ~attrs (Label.of_string (unescape label)) : int);
                loop (lineno + 1) seen_header rest
            end)
        | [ "edge"; src; dst ] -> (
          match (int_of_string_opt src, int_of_string_opt dst) with
          | Some u, Some v ->
            if u < 0 || u >= Digraph.node_count g || v < 0 || v >= Digraph.node_count g
            then err lineno (Printf.sprintf "edge (%d,%d) references unknown node" u v)
            else begin
              ignore (Digraph.add_edge g u v : bool);
              loop (lineno + 1) seen_header rest
            end
          | _ -> err lineno "bad edge endpoints")
        | keyword :: _ -> err lineno (Printf.sprintf "unknown record %S" keyword)
        | [] -> loop (lineno + 1) seen_header rest)
  in
  loop 1 false lines

let save g path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string g))

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error e -> Error e

let of_edge_list ?node_init text =
  let default_label = Label.of_string "node" in
  let node_init = Option.value ~default:(fun _ -> (default_label, Attrs.empty)) node_init in
  let g = Digraph.create () in
  let dense = Hashtbl.create 1024 in
  let intern raw =
    match Hashtbl.find_opt dense raw with
    | Some id -> id
    | None ->
      let label, attrs = node_init (Hashtbl.length dense) in
      let id = Digraph.add_node g ~attrs label in
      Hashtbl.add dense raw id;
      id
  in
  let err lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let split line =
    String.split_on_char '\t' line
    |> List.concat_map (String.split_on_char ' ')
    |> List.filter (fun t -> t <> "")
  in
  let rec loop lineno = function
    | [] -> Ok g
    | line :: rest -> (
      let line = String.trim line in
      if line = "" || line.[0] = '#' then loop (lineno + 1) rest
      else
        match split line with
        | [ src; dst ] -> (
          match (int_of_string_opt src, int_of_string_opt dst) with
          | Some s, Some d when s >= 0 && d >= 0 ->
            (* Bind in order: OCaml evaluates arguments right to left,
               which would otherwise intern the destination first and
               break first-appearance numbering. *)
            let s_id = intern s in
            let d_id = intern d in
            ignore (Digraph.add_edge g s_id d_id : bool);
            loop (lineno + 1) rest
          | _ -> err lineno (Printf.sprintf "bad endpoints %S" line))
        | _ -> err lineno (Printf.sprintf "expected 'src dst', got %S" line))
  in
  loop 1 (String.split_on_char '\n' text)

let load_edge_list ?node_init path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_edge_list ?node_init text
  | exception Sys_error e -> Error e

let to_dot ?(name = "G") ?(highlight = []) g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Buffer.add_string buf "  node [shape=box, fontname=\"Helvetica\"];\n";
  let hl = Hashtbl.create 8 in
  List.iter (fun v -> Hashtbl.replace hl v ()) highlight;
  Digraph.iter_nodes g (fun v ->
      let label = Label.to_string (Digraph.label g v) in
      let attr_text =
        String.concat "\\n"
          (List.map
             (fun (k, value) -> Printf.sprintf "%s=%s" k (Format.asprintf "%a" Attr.pp value))
             (Attrs.to_list (Digraph.attrs g v)))
      in
      let style = if Hashtbl.mem hl v then ", style=filled, fillcolor=red" else "" in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\\n%s\"%s];\n" v label attr_text style));
  Digraph.iter_edges g (fun u v ->
      Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" u v));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
