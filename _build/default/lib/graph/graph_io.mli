(** Text serialisation of data graphs, and DOT export.

    The file format (one record per line, ['#'] comments):

    {v
    expfinder-graph 1
    node <id> <label> [key=typed-value ...]
    edge <src> <dst>
    v}

    Node ids must be dense [0 .. n-1] and declared before use.  Attribute
    values use the {!Attr.to_string} syntax (e.g. [exp=int:7]).  Labels
    and attribute keys containing spaces are percent-escaped. *)

val to_string : Digraph.t -> string

val of_string : string -> (Digraph.t, string) result
(** Parse errors are reported as [Error "line N: ..."]. *)

val save : Digraph.t -> string -> unit
(** Write to a file.  @raise Sys_error on I/O failure. *)

val load : string -> (Digraph.t, string) result

val of_edge_list : ?node_init:(int -> Label.t * Attrs.t) -> string -> (Digraph.t, string) result
(** Parse a SNAP-style edge list: one [src dst] pair per line (tabs or
    spaces), ['#'] comments, node ids arbitrary non-negative integers
    (renumbered densely in first-appearance order).  [node_init] assigns
    labels/attributes by dense id (default: label ["node"], no
    attributes) — real traces rarely ship labels, so callers typically
    overlay their own. *)

val load_edge_list :
  ?node_init:(int -> Label.t * Attrs.t) -> string -> (Digraph.t, string) result
(** {!of_edge_list} on a file's contents. *)

val to_dot : ?name:string -> ?highlight:int list -> Digraph.t -> string
(** GraphViz rendering; [highlight] nodes are drawn filled red (used for
    top-1 matches, mirroring Fig. 5 of the paper). *)

val escape : string -> string
(** Percent-escape spaces, ['%'], ['='] and newlines. *)

val unescape : string -> string
