type node = int

type t = {
  n : int;
  m : int;
  fwd_offsets : int array; (* length n+1 *)
  fwd_targets : int array; (* length m *)
  rev_offsets : int array;
  rev_sources : int array;
  labels : Label.t array;
  attr_table : Attrs.t array;
  source_version : int;
  mutable by_label : (Label.t, node list) Hashtbl.t option;
}

let of_digraph g =
  let n = Digraph.node_count g in
  let fwd_offsets = Array.make (n + 1) 0 in
  let rev_offsets = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    fwd_offsets.(v + 1) <- fwd_offsets.(v) + Digraph.out_degree g v;
    rev_offsets.(v + 1) <- rev_offsets.(v) + Digraph.in_degree g v
  done;
  let m = Digraph.edge_count g in
  let fwd_targets = Array.make (max m 1) 0 in
  let rev_sources = Array.make (max m 1) 0 in
  let fwd_pos = Array.copy fwd_offsets in
  let rev_pos = Array.copy rev_offsets in
  Digraph.iter_edges g (fun u v ->
      fwd_targets.(fwd_pos.(u)) <- v;
      fwd_pos.(u) <- fwd_pos.(u) + 1;
      rev_sources.(rev_pos.(v)) <- u;
      rev_pos.(v) <- rev_pos.(v) + 1);
  let labels = Array.init n (Digraph.label g) in
  let attr_table = Array.init n (Digraph.attrs g) in
  {
    n;
    m;
    fwd_offsets;
    fwd_targets;
    rev_offsets;
    rev_sources;
    labels;
    attr_table;
    source_version = Digraph.version g;
    by_label = None;
  }

let node_count t = t.n

let edge_count t = t.m

let source_version t = t.source_version

let check t v = if v < 0 || v >= t.n then invalid_arg "Csr: unknown node"

let label t v =
  check t v;
  t.labels.(v)

let attrs t v =
  check t v;
  t.attr_table.(v)

let out_degree t v =
  check t v;
  t.fwd_offsets.(v + 1) - t.fwd_offsets.(v)

let in_degree t v =
  check t v;
  t.rev_offsets.(v + 1) - t.rev_offsets.(v)

let iter_succ t v f =
  check t v;
  for i = t.fwd_offsets.(v) to t.fwd_offsets.(v + 1) - 1 do
    f t.fwd_targets.(i)
  done

let iter_pred t v f =
  check t v;
  for i = t.rev_offsets.(v) to t.rev_offsets.(v + 1) - 1 do
    f t.rev_sources.(i)
  done

let succ_array t v =
  check t v;
  Array.sub t.fwd_targets t.fwd_offsets.(v) (out_degree t v)

let fold_succ t v f acc =
  check t v;
  let acc = ref acc in
  for i = t.fwd_offsets.(v) to t.fwd_offsets.(v + 1) - 1 do
    acc := f !acc t.fwd_targets.(i)
  done;
  !acc

let fold_pred t v f acc =
  check t v;
  let acc = ref acc in
  for i = t.rev_offsets.(v) to t.rev_offsets.(v + 1) - 1 do
    acc := f !acc t.rev_sources.(i)
  done;
  !acc

let exists_succ t v p =
  check t v;
  let rec loop i = i < t.fwd_offsets.(v + 1) && (p t.fwd_targets.(i) || loop (i + 1)) in
  loop t.fwd_offsets.(v)

let has_edge t u v = exists_succ t u (Int.equal v)

let iter_nodes t f =
  for v = 0 to t.n - 1 do
    f v
  done

let iter_edges t f = iter_nodes t (fun u -> iter_succ t u (fun v -> f u v))

let nodes_with_label t l =
  let table =
    match t.by_label with
    | Some table -> table
    | None ->
      let table = Hashtbl.create 16 in
      (* Build in reverse so each bucket ends up in increasing node order. *)
      for v = t.n - 1 downto 0 do
        let l = t.labels.(v) in
        let bucket = Option.value ~default:[] (Hashtbl.find_opt table l) in
        Hashtbl.replace table l (v :: bucket)
      done;
      t.by_label <- Some table;
      table
  in
  Option.value ~default:[] (Hashtbl.find_opt table l)

let max_out_degree t =
  let best = ref 0 in
  for v = 0 to t.n - 1 do
    best := max !best (out_degree t v)
  done;
  !best

let to_digraph t =
  let g = Digraph.create ~capacity:t.n () in
  for v = 0 to t.n - 1 do
    ignore (Digraph.add_node g ~attrs:t.attr_table.(v) t.labels.(v) : int)
  done;
  iter_edges t (fun u v -> ignore (Digraph.add_edge g u v : bool));
  g
