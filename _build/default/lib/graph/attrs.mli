(** Per-node attribute records.

    A small immutable map from attribute names to {!Attr.t} values, stored
    as a sorted association list (nodes carry a handful of attributes, so
    a list beats a hashtable on both memory and speed). *)

type t

val empty : t

val of_list : (string * Attr.t) list -> t
(** Later bindings win over earlier bindings for duplicate names. *)

val to_list : t -> (string * Attr.t) list
(** Bindings sorted by name. *)

val find : t -> string -> Attr.t option

val set : t -> string -> Attr.t -> t

val remove : t -> string -> t

val mem : t -> string -> bool

val cardinal : t -> int

val is_empty : t -> bool

val equal : t -> t -> bool

val union : t -> t -> t
(** [union a b] contains all bindings of both; [b] wins on conflicts. *)

val pp : Format.formatter -> t -> unit
(** [{name=Bob, exp=7}] style rendering. *)

(* Convenience constructors used pervasively by workloads and tests. *)

val int : string -> int -> string * Attr.t
val str : string -> string -> string * Attr.t
val float : string -> float -> string * Attr.t
val bool : string -> bool -> string * Attr.t
