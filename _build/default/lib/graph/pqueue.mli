(** Binary min-heap keyed by integer priorities.

    Used by Dijkstra over result graphs and by top-K selection.  The heap
    stores [(priority, payload)] pairs; duplicates are allowed (lazy
    deletion is the caller's concern, as usual for Dijkstra). *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> int -> 'a -> unit
(** [push h prio x] inserts [x] with priority [prio]. *)

val pop_min : 'a t -> (int * 'a) option
(** Remove and return the pair with the smallest priority. *)

val peek_min : 'a t -> (int * 'a) option

val clear : 'a t -> unit
