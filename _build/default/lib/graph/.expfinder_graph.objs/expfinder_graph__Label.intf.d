lib/graph/label.mli: Format
