lib/graph/wgraph.mli:
