lib/graph/graph_intf.ml: Attrs Label
