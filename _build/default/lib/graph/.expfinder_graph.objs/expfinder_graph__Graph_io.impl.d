lib/graph/graph_io.ml: Attr Attrs Buffer Char Digraph Format Fun Hashtbl In_channel Label List Option Printf Result String
