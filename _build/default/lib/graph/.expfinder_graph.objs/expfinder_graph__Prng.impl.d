lib/graph/prng.ml: Array Hashtbl Int64
