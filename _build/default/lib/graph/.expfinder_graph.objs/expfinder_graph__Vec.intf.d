lib/graph/vec.mli:
