lib/graph/bitset.mli:
