lib/graph/distance.ml: Array Csr Graph_intf Queue Vec
