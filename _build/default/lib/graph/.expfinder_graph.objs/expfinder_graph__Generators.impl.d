lib/graph/generators.ml: Array Attrs Digraph Label Prng Vec
