lib/graph/attr.mli: Format
