lib/graph/attrs.ml: Attr Format List Option String
