lib/graph/scc.ml: Array Csr Hashtbl List Vec
