lib/graph/traversal.mli: Bitset Csr
