lib/graph/prng.mli:
