lib/graph/scc.mli: Csr
