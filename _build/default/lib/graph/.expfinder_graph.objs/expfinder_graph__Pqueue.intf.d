lib/graph/pqueue.mli:
