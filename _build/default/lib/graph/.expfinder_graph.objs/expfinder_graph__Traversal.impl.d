lib/graph/traversal.ml: Array Bitset Csr List Option Queue Vec
