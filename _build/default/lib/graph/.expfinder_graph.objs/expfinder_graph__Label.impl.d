lib/graph/label.ml: Format Hashtbl Int Vec
