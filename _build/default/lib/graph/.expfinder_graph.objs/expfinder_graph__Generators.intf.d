lib/graph/generators.mli: Attrs Digraph Label Prng
