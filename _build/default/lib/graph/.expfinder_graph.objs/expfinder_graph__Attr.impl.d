lib/graph/attr.ml: Bool Float Format Int List Printf String
