lib/graph/distance.mli: Csr Graph_intf
