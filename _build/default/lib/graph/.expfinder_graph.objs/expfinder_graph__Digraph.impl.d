lib/graph/digraph.ml: Array Attrs Format Int Label List Vec
