lib/graph/bitset.ml: Array List
