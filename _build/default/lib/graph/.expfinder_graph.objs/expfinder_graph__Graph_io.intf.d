lib/graph/graph_io.mli: Attrs Digraph Label
