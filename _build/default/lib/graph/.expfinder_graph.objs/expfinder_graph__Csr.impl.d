lib/graph/csr.ml: Array Attrs Digraph Hashtbl Int Label Option
