lib/graph/reach.ml: Array Bitset List Queue Scc
