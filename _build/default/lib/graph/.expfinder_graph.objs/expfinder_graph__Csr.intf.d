lib/graph/csr.mli: Attrs Digraph Label
