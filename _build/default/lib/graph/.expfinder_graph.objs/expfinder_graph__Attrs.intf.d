lib/graph/attrs.mli: Attr Format
