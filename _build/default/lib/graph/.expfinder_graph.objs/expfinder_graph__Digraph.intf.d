lib/graph/digraph.mli: Attrs Format Label
