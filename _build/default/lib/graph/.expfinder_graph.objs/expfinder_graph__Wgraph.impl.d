lib/graph/wgraph.ml: Array Option Pqueue Vec
