lib/graph/reach.mli: Csr
