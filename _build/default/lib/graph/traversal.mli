(** Breadth-first and depth-first traversals over CSR snapshots. *)

type node = int

val bfs : Csr.t -> node list -> (node -> int -> unit) -> unit
(** [bfs g sources f] runs a forward multi-source BFS, calling [f v d]
    once per reached node with its hop distance from the nearest source
    (sources get distance 0). *)

val bfs_rev : Csr.t -> node list -> (node -> int -> unit) -> unit
(** Same over reversed edges (reaches the ancestors of the sources). *)

val reachable_from : Csr.t -> node list -> Bitset.t
(** Forward-reachable set, sources included. *)

val ancestors_of : Csr.t -> node list -> Bitset.t
(** Reverse-reachable set (every node with a path *to* a source), sources
    included.  This is the affected area used by incremental matching. *)

val dfs_postorder : Csr.t -> (node -> unit) -> unit
(** Iterative DFS over the whole graph; calls [f] in postorder. *)

val is_dag : Csr.t -> bool

val topological_order : Csr.t -> node array option
(** [Some order] (sources first) when the graph is acyclic. *)
