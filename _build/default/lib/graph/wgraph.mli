(** Small weighted directed graphs with integer edge weights.

    Result graphs mark each edge with the length of the shortest witness
    path, and the social-impact ranking needs weighted shortest distances
    over them; this module provides exactly that (adjacency lists +
    Dijkstra).  Nodes are dense integers chosen by the caller. *)

type t

type node = int

val create : int -> t
(** [create n] is an edgeless weighted graph on nodes [0 .. n-1]. *)

val node_count : t -> int

val edge_count : t -> int

val add_edge : t -> node -> node -> int -> unit
(** [add_edge g u v w] adds [u -> v] with weight [w >= 0].  When the edge
    already exists the minimum of the old and new weight is kept. *)

val weight : t -> node -> node -> int option

val iter_succ : t -> node -> (node -> int -> unit) -> unit

val iter_pred : t -> node -> (node -> int -> unit) -> unit

val iter_edges : t -> (node -> node -> int -> unit) -> unit

val dijkstra : t -> node -> int array
(** Shortest weighted distances from the source; [-1] when unreachable;
    [0] for the source itself. *)

val dijkstra_rev : t -> node -> int array
(** Shortest weighted distances *to* the source (over reversed edges). *)

val transpose : t -> t
