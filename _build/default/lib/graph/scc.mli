(** Strongly connected components (Tarjan, iterative) and condensation.

    Used to answer unbounded-reachability checks for pattern edges with no
    length bound: reachability is computed once on the condensation DAG
    and shared across all candidate checks. *)

type t

val compute : Csr.t -> t

val count : t -> int
(** Number of components. *)

val component : t -> int -> int
(** [component t v] is the id of [v]'s component, in [0 .. count-1].
    Component ids are in reverse topological order of the condensation
    (an edge between distinct components goes from a higher id to a lower
    id is {e not} guaranteed; use {!condensation} for DAG processing). *)

val members : t -> int -> int list
(** Nodes of a component. *)

val component_size : t -> int -> int

val condensation : t -> Csr.t -> int list array
(** [condensation t g] is the adjacency of the condensation DAG: for each
    component id, the list of distinct successor component ids. *)

val is_trivial : t -> Csr.t -> int -> bool
(** A component is trivial when it is a single node without a self loop
    (i.e. it does not lie on any cycle). *)
