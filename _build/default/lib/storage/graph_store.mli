open Expfinder_graph
open Expfinder_pattern

(** File-backed storage (§II: "all the graphs and query results are
    stored and managed as files").

    A store is a directory with one [.graph] file per data graph, one
    [.pattern] file per saved query and one [.result] file per persisted
    match relation, all in the textual formats of {!Graph_io} /
    {!Pattern_io}. *)

type t

val open_dir : string -> t
(** Create the directory when missing. *)

val root : t -> string

val list_graphs : t -> string list
(** Saved graph names, sorted. *)

val save_graph : t -> string -> Digraph.t -> unit

val load_graph : t -> string -> (Digraph.t, string) result

val list_patterns : t -> string list

val save_pattern : t -> string -> Pattern.t -> unit

val load_pattern : t -> string -> (Pattern.t, string) result

val save_result : t -> string -> (int * int) list -> unit
(** Persist match pairs under a name. *)

val load_result : t -> string -> ((int * int) list, string) result

val remove : t -> string -> unit
(** Remove every artifact saved under the name. *)
