lib/storage/cache.mli: Expfinder_core Expfinder_pattern Match_relation Pattern
