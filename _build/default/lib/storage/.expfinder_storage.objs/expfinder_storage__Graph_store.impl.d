lib/storage/graph_store.ml: Array Expfinder_graph Expfinder_pattern Filename Fun Graph_io In_channel List Pattern_io Printf String Sys
