lib/storage/graph_store.mli: Digraph Expfinder_graph Expfinder_pattern Pattern
