lib/storage/cache.ml: Expfinder_core Expfinder_pattern Hashtbl List Match_relation Pattern
