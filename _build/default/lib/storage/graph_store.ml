open Expfinder_graph
open Expfinder_pattern

type t = { root : string }

let open_dir root =
  if not (Sys.file_exists root) then Sys.mkdir root 0o755
  else if not (Sys.is_directory root) then
    invalid_arg (Printf.sprintf "Graph_store.open_dir: %S is not a directory" root);
  { root }

let root t = t.root

let path t name ext = Filename.concat t.root (name ^ ext)

let check_name name =
  if
    name = ""
    || String.exists (fun c -> c = '/' || c = '\\' || c = '\000') name
    || name.[0] = '.'
  then invalid_arg (Printf.sprintf "Graph_store: invalid artifact name %S" name)

let list_ext t ext =
  if not (Sys.file_exists t.root) then []
  else
    Sys.readdir t.root |> Array.to_list
    |> List.filter_map (fun f -> Filename.chop_suffix_opt ~suffix:ext f)
    |> List.sort compare

let list_graphs t = list_ext t ".graph"

let save_graph t name g =
  check_name name;
  Graph_io.save g (path t name ".graph")

let load_graph t name =
  check_name name;
  let file = path t name ".graph" in
  if Sys.file_exists file then Graph_io.load file
  else Error (Printf.sprintf "no graph named %S in %s" name t.root)

let list_patterns t = list_ext t ".pattern"

let save_pattern t name p =
  check_name name;
  Pattern_io.save p (path t name ".pattern")

let load_pattern t name =
  check_name name;
  let file = path t name ".pattern" in
  if Sys.file_exists file then Pattern_io.load file
  else Error (Printf.sprintf "no pattern named %S in %s" name t.root)

let save_result t name pairs =
  check_name name;
  let oc = open_out (path t name ".result") in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc "expfinder-result 1\n";
      List.iter (fun (u, v) -> Printf.fprintf oc "pair %d %d\n" u v) pairs)

let load_result t name =
  check_name name;
  let file = path t name ".result" in
  if not (Sys.file_exists file) then
    Error (Printf.sprintf "no result named %S in %s" name t.root)
  else begin
    let text = In_channel.with_open_text file In_channel.input_all in
    let lines = String.split_on_char '\n' text in
    let rec loop lineno seen_header acc = function
      | [] -> if seen_header then Ok (List.rev acc) else Error "empty result file"
      | line :: rest -> (
        let line = String.trim line in
        if line = "" || line.[0] = '#' then loop (lineno + 1) seen_header acc rest
        else if not seen_header then
          if line = "expfinder-result 1" then loop (lineno + 1) true acc rest
          else Error (Printf.sprintf "line %d: bad header" lineno)
        else
          match String.split_on_char ' ' line with
          | [ "pair"; u; v ] -> (
            match (int_of_string_opt u, int_of_string_opt v) with
            | Some u, Some v -> loop (lineno + 1) seen_header ((u, v) :: acc) rest
            | _ -> Error (Printf.sprintf "line %d: bad pair" lineno))
          | _ -> Error (Printf.sprintf "line %d: unknown record" lineno))
    in
    loop 1 false [] lines
  end

let remove t name =
  check_name name;
  List.iter
    (fun ext ->
      let file = path t name ext in
      if Sys.file_exists file then Sys.remove file)
    [ ".graph"; ".pattern"; ".result" ]
