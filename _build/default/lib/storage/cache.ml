open Expfinder_pattern
open Expfinder_core

type entry = {
  key : string * int;
  relation : Match_relation.t;
  mutable stamp : int;
}

type t = {
  capacity : int;
  table : (string * int, entry) Hashtbl.t;
  mutable clock : int;
  mutable hit_count : int;
  mutable miss_count : int;
}

let create ?(capacity = 64) () =
  if capacity < 1 then invalid_arg "Cache.create";
  { capacity; table = Hashtbl.create capacity; clock = 0; hit_count = 0; miss_count = 0 }

let capacity t = t.capacity

let length t = Hashtbl.length t.table

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let key_of pattern version = (Pattern.fingerprint pattern, version)

let find t pattern ~graph_version =
  match Hashtbl.find_opt t.table (key_of pattern graph_version) with
  | Some entry ->
    entry.stamp <- tick t;
    t.hit_count <- t.hit_count + 1;
    Some (Match_relation.copy entry.relation)
  | None ->
    t.miss_count <- t.miss_count + 1;
    None

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun _ entry acc ->
        match acc with
        | Some best when best.stamp <= entry.stamp -> acc
        | _ -> Some entry)
      t.table None
  in
  match victim with None -> () | Some entry -> Hashtbl.remove t.table entry.key

let store t pattern ~graph_version relation =
  let key = key_of pattern graph_version in
  if not (Hashtbl.mem t.table key) && Hashtbl.length t.table >= t.capacity then
    evict_lru t;
  Hashtbl.replace t.table key
    { key; relation = Match_relation.copy relation; stamp = tick t }

let invalidate_version t version =
  let victims =
    Hashtbl.fold (fun key _ acc -> if snd key = version then key :: acc else acc) t.table []
  in
  List.iter (Hashtbl.remove t.table) victims

let clear t =
  Hashtbl.reset t.table;
  t.hit_count <- 0;
  t.miss_count <- 0

let hits t = t.hit_count

let misses t = t.miss_count
