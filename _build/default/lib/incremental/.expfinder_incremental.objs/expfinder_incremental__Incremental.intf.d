lib/incremental/incremental.mli: Csr Digraph Expfinder_core Expfinder_graph Expfinder_pattern Match_relation Pattern Update
