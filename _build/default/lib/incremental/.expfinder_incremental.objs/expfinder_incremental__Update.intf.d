lib/incremental/update.mli: Attrs Digraph Expfinder_graph Format Label Prng
