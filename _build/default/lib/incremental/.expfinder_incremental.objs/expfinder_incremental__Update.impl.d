lib/incremental/update.ml: Array Attrs Digraph Expfinder_graph Format Hashtbl Label List Option Prng
