(* Living with a dynamic network (§II Incremental Computation Module).

   A monitoring service keeps a standing expert query answered while the
   collaboration network keeps changing.  Each month brings a small batch
   of new and dropped collaborations; the registered query is maintained
   incrementally, and we compare the work done (affected area) against
   the size of the graph a batch recomputation would have to touch.

   Run with: dune exec examples/dynamic_collaboration.exe *)

open Expfinder_graph
open Expfinder_pattern
open Expfinder_core
open Expfinder_incremental
open Expfinder_engine
module Synthetic = Expfinder_workload.Synthetic
module Queries = Expfinder_workload.Queries

let () =
  let rng = Prng.create 11 in
  let network = Synthetic.flat rng ~n:6_000 ~avg_degree:4 in
  let engine = Engine.create network in

  (* A standing query: senior SA collaborating with an SD and a QA. *)
  let standing =
    Pattern.make_exn
      ~nodes:
        [|
          { Pattern.name = "SA"; label = Some (Label.of_string "SA"); pred = Predicate.ge_int "exp" 5 };
          { Pattern.name = "SD"; label = Some (Label.of_string "SD"); pred = Predicate.ge_int "exp" 2 };
          { Pattern.name = "QA"; label = Some (Label.of_string "QA"); pred = Predicate.always };
        |]
      ~edges:[ (0, 1, Pattern.Bounded 2); (0, 2, Pattern.Bounded 2); (1, 2, Pattern.Bounded 2) ]
      ~output:0
  in
  Engine.register engine standing;

  let initial = Engine.evaluate engine standing in
  Printf.printf "initially: %d SA experts match\n"
    (Match_relation.count initial.Engine.relation 0);

  let n = Digraph.node_count network in
  for month = 1 to 6 do
    let updates = Update.random_mixed rng (Engine.graph engine) 20 in
    match Engine.apply_updates engine updates with
    | [ report ] ->
      Printf.printf
        "month %d: %2d updates, affected area %4d/%d nodes (%4.1f%%), %+d/%d matches\n" month
        report.Incremental.effective report.Incremental.area n
        (100.0 *. float_of_int report.Incremental.area /. float_of_int n)
        (List.length report.Incremental.added)
        (List.length report.Incremental.removed)
    | _ -> assert false
  done;

  (* The maintained answer always agrees with recomputation. *)
  let maintained = Engine.evaluate engine standing in
  let fresh = Bounded_sim.run standing (Engine.snapshot engine) in
  assert (Match_relation.equal maintained.Engine.relation fresh);
  Printf.printf "final: %d SA experts (verified against batch recomputation)\n"
    (Match_relation.count maintained.Engine.relation 0);

  print_endline "\ncurrent top 3:";
  List.iteri
    (fun i { Engine.node; rank; _ } ->
      Printf.printf "  #%d person %d (rank %s)\n" (i + 1) node
        (Format.asprintf "%a" Ranking.pp_rank rank))
    (Engine.top_k engine standing ~k:3)
