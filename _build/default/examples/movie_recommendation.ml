(* Beyond expert search: the paper closes by noting the same machinery
   recommends movies, finds jobs, plans travel.  This example recommends
   movies with graph pattern matching: the data graph links users and
   the movies they liked (both directions — a like is a collaboration),
   and the query asks for highly rated sci-fi movies liked by someone
   who also liked the seed movie.  Social-impact ranking then surfaces
   the recommendations most central to that taste community.

   Run with: dune exec examples/movie_recommendation.exe *)

open Expfinder_graph
open Expfinder_pattern
open Expfinder_engine

let genres = [| "scifi"; "drama"; "comedy"; "noir"; "action" |]

(* A small deterministic movie/user graph: users have a favourite genre
   and like mostly within it, so genre communities emerge. *)
let build rng ~movies ~users =
  let g = Digraph.create () in
  let movie_label = Label.of_string "Movie" and user_label = Label.of_string "User" in
  let movie_ids =
    Array.init movies (fun i ->
        let genre = genres.(i mod Array.length genres) in
        Digraph.add_node g
          ~attrs:
            (Attrs.of_list
               [
                 Attrs.str "name" (Printf.sprintf "%s-movie-%d" genre i);
                 Attrs.str "genre" genre;
                 Attrs.int "rating" (4 + Prng.int rng 7);
               ])
          movie_label)
  in
  let seed = movie_ids.(0) in
  Digraph.set_attrs g seed
    (Attrs.of_list
       [ Attrs.str "name" "The Seed Film"; Attrs.str "genre" "scifi"; Attrs.int "rating" 9 ]);
  for _ = 1 to users do
    let favourite = Prng.int rng (Array.length genres) in
    let u =
      Digraph.add_node g
        ~attrs:(Attrs.of_list [ Attrs.str "taste" genres.(favourite) ])
        user_label
    in
    for _ = 1 to 3 + Prng.int rng 5 do
      (* 70% within the favourite genre *)
      let pick =
        if Prng.float rng 1.0 < 0.7 then begin
          let offset = Prng.int rng (movies / Array.length genres) in
          movie_ids.((offset * Array.length genres) + favourite mod Array.length genres)
        end
        else movie_ids.(Prng.int rng movies)
      in
      ignore (Digraph.add_edge g u pick : bool);
      ignore (Digraph.add_edge g pick u : bool)
    done
  done;
  (g, seed)

let () =
  let rng = Prng.create 77 in
  let g, seed = build rng ~movies:200 ~users:2_000 in
  Printf.printf "catalogue graph: %d nodes, %d like-edges\n" (Digraph.node_count g)
    (Digraph.edge_count g);

  (* "Recommend a well-rated sci-fi movie (*) liked by a viewer who also
     liked The Seed Film." *)
  let query =
    Pattern.make_exn
      ~nodes:
        [|
          {
            Pattern.name = "rec";
            label = Some (Label.of_string "Movie");
            pred =
              Predicate.conj (Predicate.eq_str "genre" "scifi") (Predicate.ge_int "rating" 7);
          };
          { Pattern.name = "fan"; label = Some (Label.of_string "User"); pred = Predicate.always };
          {
            Pattern.name = "seed";
            label = Some (Label.of_string "Movie");
            pred = Predicate.eq_str "name" "The Seed Film";
          };
        |]
      ~edges:[ (0, 1, Pattern.Bounded 1); (1, 2, Pattern.Bounded 1) ]
      ~output:0
  in

  let engine = Engine.create g in
  let recommendations = Engine.top_k engine query ~k:5 in
  if recommendations = [] then print_endline "no recommendation matches the constraints"
  else begin
    print_endline "\nrecommended (most central to the seed film's audience first):";
    List.iteri
      (fun i { Engine.node; name; rank } ->
        ignore node;
        Printf.printf "  #%d %s (impact %.2f)\n" (i + 1)
          (Option.value ~default:"?" name)
          (Expfinder_core.Ranking.rank_to_float rank))
      recommendations
  end;

  (* The seed film itself scores too — but recommending it back is no
     use; a real system would filter it.  Show that it matched. *)
  let answer = Engine.evaluate engine query in
  Printf.printf "\n(matching movies: %d, including the seed itself: %b)\n"
    (Expfinder_core.Match_relation.count answer.Engine.relation 0)
    (Expfinder_core.Match_relation.mem answer.Engine.relation 0 seed)
