examples/quickstart.mli:
