examples/dynamic_collaboration.mli:
