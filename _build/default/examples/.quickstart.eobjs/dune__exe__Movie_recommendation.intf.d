examples/movie_recommendation.mli:
