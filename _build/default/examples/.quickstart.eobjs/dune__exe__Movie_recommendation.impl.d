examples/movie_recommendation.ml: Array Attrs Digraph Engine Expfinder_core Expfinder_engine Expfinder_graph Expfinder_pattern Label List Option Pattern Predicate Printf Prng
