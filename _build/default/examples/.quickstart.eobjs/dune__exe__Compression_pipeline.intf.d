examples/compression_pipeline.mli:
