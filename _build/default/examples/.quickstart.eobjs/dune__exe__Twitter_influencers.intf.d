examples/twitter_influencers.mli:
