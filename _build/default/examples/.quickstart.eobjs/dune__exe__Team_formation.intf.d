examples/team_formation.mli:
