(* Quickstart: the paper's Fig. 1 end to end.

   Builds the collaboration network, expresses the hiring requirements as
   a bounded-simulation pattern, evaluates it, ranks the SA experts, and
   reacts to a network update — Examples 1, 2 and 3 of the paper.

   Run with: dune exec examples/quickstart.exe *)

open Expfinder_graph
open Expfinder_pattern
open Expfinder_core
open Expfinder_incremental
open Expfinder_engine

let () =
  (* A company's collaboration network: each node is a person with a
     field label (SA = system architect, SD = system developer, ...) and
     attributes; each edge is a collaboration. *)
  let network = Expfinder_workload.Collab.graph () in

  (* "Hire an SA with >= 5 years of experience who has worked with an SD
     (within 2 hops, both directions), supervised a BA within 3 hops, and
     the team's tester vets the BA's work directly."  The '*' output node
     is SA: those are the experts we want back. *)
  let requirements =
    Pattern.make_exn
      ~nodes:
        [|
          { Pattern.name = "SA"; label = Some (Label.of_string "SA"); pred = Predicate.ge_int "exp" 5 };
          { Pattern.name = "SD"; label = Some (Label.of_string "SD"); pred = Predicate.ge_int "exp" 2 };
          { Pattern.name = "BA"; label = Some (Label.of_string "BA"); pred = Predicate.ge_int "exp" 3 };
          { Pattern.name = "ST"; label = Some (Label.of_string "ST"); pred = Predicate.ge_int "exp" 2 };
        |]
      ~edges:
        [
          (0, 1, Pattern.Bounded 2);
          (1, 0, Pattern.Bounded 2);
          (0, 2, Pattern.Bounded 3);
          (3, 2, Pattern.Bounded 1);
        ]
      ~output:0
  in

  let engine = Engine.create network in

  (* Example 1: the maximum match M(Q,G). *)
  let answer = Engine.evaluate engine requirements in
  print_endline "matches per requirement:";
  for u = 0 to Pattern.size requirements - 1 do
    let names =
      List.map Expfinder_workload.Collab.name_of
        (Match_relation.matches answer.Engine.relation u)
    in
    Printf.printf "  %s: %s\n" (Pattern.name requirements u) (String.concat ", " names)
  done;

  (* Example 2: rank the SA matches by social impact (average distance to
     collaborators in the result graph; lower = stronger impact). *)
  print_endline "\ntop experts:";
  List.iteri
    (fun i { Engine.name; rank; _ } ->
      Printf.printf "  #%d %s (rank %s)\n" (i + 1)
        (Option.value ~default:"?" name)
        (Format.asprintf "%a" Ranking.pp_rank rank))
    (Engine.top_k engine requirements ~k:2);

  (* Example 3: the network changes — Fred starts collaborating with
     Bill.  Register the query so ExpFinder maintains the answer
     incrementally instead of recomputing it. *)
  Engine.register engine requirements;
  let fred, bill = Expfinder_workload.Collab.e1 in
  (match Engine.apply_updates engine [ Update.Insert_edge (fred, bill) ] with
  | [ report ] ->
    Printf.printf "\nafter Fred->Bill is inserted (affected area: %d node):\n"
      report.Incremental.area;
    List.iter
      (fun (u, v) ->
        Printf.printf "  new match: (%s, %s)\n" (Pattern.name requirements u)
          (Expfinder_workload.Collab.name_of v))
      report.Incremental.added
  | _ -> assert false);

  (* Export the result graph for visual inspection (GraphViz). *)
  let gr = Engine.result_graph engine requirements in
  print_endline "\nresult graph (DOT):";
  print_string (Result_graph.to_dot requirements (Engine.snapshot engine) gr)
