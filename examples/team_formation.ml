(* Team formation in an organisation (the paper's motivating scenario at
   scale).

   A company wants a project-manager lead for a medical-record system:
   someone senior who runs a team with a database specialist and a QA
   engineer, and who reports to an experienced architect.  We search an
   organisational network of ~4k people, with graph compression enabled —
   the engine transparently evaluates on the compressed graph.

   Run with: dune exec examples/team_formation.exe *)

open Expfinder_graph
open Expfinder_pattern
open Expfinder_core
open Expfinder_compression
open Expfinder_engine
module Synthetic = Expfinder_workload.Synthetic
module Queries = Expfinder_workload.Queries

let () =
  let rng = Prng.create 2024 in
  let network = Synthetic.org rng ~teams:400 ~team_size:9 in
  Printf.printf "organisational network: %d people, %d collaborations\n"
    (Digraph.node_count network) (Digraph.edge_count network);

  let engine = Engine.create network in
  Engine.enable_compression ~atoms:Queries.atom_universe engine;
  (match Engine.compression engine with
  | Some c ->
    Printf.printf "compressed for querying: %d -> %d nodes (%.1f%% reduction)\n"
      (Snapshot.node_count (Compress.original c))
      (Snapshot.node_count (Compress.compressed c))
      (100.0 *. Compress.node_ratio c)
  | None -> assert false);

  (* The requirements: a senior PM trusted by a seasoned architect (they
     collaborate directly, both directions), whose team includes a senior
     DBA and a QA engineer (both within two collaboration hops of the
     lead). *)
  let lead_query =
    Pattern.make_exn
      ~nodes:
        [|
          { Pattern.name = "lead"; label = Some (Label.of_string "PM"); pred = Predicate.ge_int "exp" 5 };
          { Pattern.name = "dba"; label = Some (Label.of_string "DBA"); pred = Predicate.ge_int "exp" 5 };
          { Pattern.name = "qa"; label = Some (Label.of_string "QA"); pred = Predicate.ge_int "exp" 2 };
          { Pattern.name = "architect"; label = Some (Label.of_string "SA"); pred = Predicate.ge_int "exp" 5 };
        |]
      ~edges:
        [
          (0, 3, Pattern.Bounded 1);
          (3, 0, Pattern.Bounded 1);
          (1, 0, Pattern.Bounded 2);
          (2, 0, Pattern.Bounded 2);
        ]
      ~output:0
  in

  let answer = Engine.evaluate engine lead_query in
  Printf.printf "\nanswered via: %s\n"
    (match answer.Engine.provenance with
    | Engine.From_compressed -> "compressed graph"
    | Engine.From_cache -> "cache"
    | Engine.From_index -> "ball index"
    | Engine.Direct -> "direct evaluation");
  Printf.printf "candidate leads: %d\n"
    (Match_relation.count answer.Engine.relation (Pattern.output lead_query));

  print_endline "\ntop 5 leads by social impact:";
  List.iteri
    (fun i { Engine.node; rank; _ } ->
      Printf.printf "  #%d person %d (rank %s)\n" (i + 1) node
        (Format.asprintf "%a" Ranking.pp_rank rank))
    (Engine.top_k engine lead_query ~k:5);

  (* Asking again is free: the cache answers. *)
  let again = Engine.evaluate engine lead_query in
  assert (again.Engine.provenance = Engine.From_cache);
  let hits, misses = Engine.cache_stats engine in
  Printf.printf "\ncache: %d hits, %d misses\n" hits misses
