(* Query-preserving compression as a storage/throughput tool (§II Graph
   Compression Module).

   Compresses three datasets, verifies on a query workload that answers
   computed on the compressed graphs are identical to direct evaluation,
   and reports the size reductions and the observed query-time effect.

   Run with: dune exec examples/compression_pipeline.exe *)

open Expfinder_graph
open Expfinder_pattern
open Expfinder_core
open Expfinder_compression
module Synthetic = Expfinder_workload.Synthetic
module Twitter = Expfinder_workload.Twitter
module Queries = Expfinder_workload.Queries

let time f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

let run_query g q =
  if Pattern.is_simulation_pattern q then Simulation.run q g else Bounded_sim.run q g

let () =
  let rng = Prng.create 5 in
  let datasets =
    [
      ("org-2k", Synthetic.org rng ~teams:200 ~team_size:9);
      ("org-4k", Synthetic.org rng ~teams:400 ~team_size:9);
      ("twitter-5k", Twitter.generate rng ~n:5_000);
    ]
  in
  Printf.printf "%-12s %10s %10s %8s %8s %12s %12s\n" "dataset" "|V|" "|Vc|" "nodes%" "edges%"
    "t(G) ms" "t(Gc) ms";
  List.iter
    (fun (name, g) ->
      let csr = Snapshot.of_digraph g in
      let compressed = Compress.compress ~atoms:Queries.atom_universe csr in
      let queries = Queries.workload rng ~count:10 ~simulation:false g in
      (* Verify exactness on the whole workload. *)
      List.iter
        (fun q ->
          assert (Compress.supports compressed q);
          let direct = run_query csr q in
          let via_gc = Compress.evaluate compressed q in
          assert (Match_relation.equal direct via_gc))
        queries;
      let (), t_direct = time (fun () -> List.iter (fun q -> ignore (run_query csr q)) queries) in
      let (), t_gc =
        time (fun () -> List.iter (fun q -> ignore (Compress.evaluate compressed q)) queries)
      in
      Printf.printf "%-12s %10d %10d %7.1f%% %7.1f%% %12.1f %12.1f\n" name
        (Snapshot.node_count csr)
        (Snapshot.node_count (Compress.compressed compressed))
        (100.0 *. Compress.node_ratio compressed)
        (100.0 *. Compress.edge_ratio compressed)
        (1000.0 *. t_direct) (1000.0 *. t_gc))
    datasets;
  print_endline "\nall workload answers on compressed graphs verified identical to direct evaluation"
