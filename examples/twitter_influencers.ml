(* Expert finding on a social-media graph (the paper's Twitter workload).

   Find database experts on a follower network: a DB account with strong
   experience, followed (within 2 hops) by an ML practitioner and a
   systems person, and itself following a security account within 3 hops.
   The '*' output node is the DB expert.

   Run with: dune exec examples/twitter_influencers.exe *)

open Expfinder_graph
open Expfinder_pattern
open Expfinder_core
open Expfinder_engine
module Twitter = Expfinder_workload.Twitter

let () =
  let rng = Prng.create 7 in
  let network = Twitter.generate rng ~n:20_000 in
  Printf.printf "follower network: %d users, %d follow edges\n" (Digraph.node_count network)
    (Digraph.edge_count network);

  let query =
    Pattern.make_exn
      ~nodes:
        [|
          { Pattern.name = "db_expert"; label = Some (Label.of_string "DB"); pred = Predicate.ge_int "exp" 6 };
          { Pattern.name = "ml_fan"; label = Some (Label.of_string "ML"); pred = Predicate.always };
          { Pattern.name = "sys_fan"; label = Some (Label.of_string "Sys"); pred = Predicate.always };
          { Pattern.name = "sec_source"; label = Some (Label.of_string "Sec"); pred = Predicate.ge_int "exp" 4 };
        |]
      ~edges:
        [
          (* followers reach the expert (follow edges point outward) *)
          (1, 0, Pattern.Bounded 2);
          (2, 0, Pattern.Bounded 2);
          (* the expert follows a security source *)
          (0, 3, Pattern.Bounded 3);
        ]
      ~output:0
  in

  let engine = Engine.create network in
  let answer = Engine.evaluate engine query in
  Printf.printf "DB experts matching the pattern: %d\n"
    (Match_relation.count answer.Engine.relation 0);

  print_endline "\ntop 10 by social impact:";
  List.iteri
    (fun i { Engine.node; name; rank } ->
      let followers =
        match Attrs.find (Snapshot.attrs (Engine.snapshot engine) node) "followers" with
        | Some (Attr.Int f) -> f
        | _ -> 0
      in
      Printf.printf "  #%d %s  rank %s  (%d followers)\n" (i + 1)
        (Option.value ~default:(string_of_int node) name)
        (Format.asprintf "%a" Ranking.pp_rank rank)
        followers)
    (Engine.top_k engine query ~k:10)
